// End-to-end fault tolerance of the training loop on the real KUCNet model:
// resume from a snapshot is bitwise identical to an uninterrupted run (at 1
// and 4 threads), a non-finite loss rolls back to the last good state with a
// learning-rate backoff, and a crash at any point of the snapshot IO never
// aborts training or leaves an unreadable checkpoint directory.

#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kucnet.h"
#include "data/synthetic.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"
#include "train/trainer.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace kucnet {
namespace {

/// Fresh, empty scratch directory under the test temp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  KUC_CHECK(DefaultFileSystem().MakeDirs(dir).ok());
  return dir;
}

/// Small learnable dataset (same shape as the determinism tests).
Dataset TinyDataset() {
  SyntheticConfig cfg;
  cfg.seed = 42;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 6;
  Rng rng(42);
  return TraditionalSplit(GenerateSynthetic(cfg).raw, 0.25, rng);
}

/// Overwrites every trainable weight with +Inf, simulating a diverged
/// update. (Inf, not NaN: the Relu in the message-passing stack maps NaN to
/// 0, but Inf propagates and turns the BPR loss into Inf - Inf = NaN.)
void PoisonParams(RankModel& m) {
  for (Parameter* p : m.TrainableParams()) {
    Matrix& v = p->value();
    for (int64_t i = 0; i < v.rows(); ++i) {
      for (int64_t j = 0; j < v.cols(); ++j) {
        v.at(i, j) = std::numeric_limits<real_t>::infinity();
      }
    }
  }
}

KucnetOptions SmallKucnetOptions() {
  KucnetOptions opts;
  opts.hidden_dim = 12;
  opts.attention_dim = 3;
  // Items only enter the *final* layer at depth 3 on this dataset (user ->
  // item -> entity -> item); a shallower graph trains on zero pairs.
  opts.depth = 3;
  opts.sample_k = 10;
  opts.dropout = 0.2;  // resume must replay the dropout streams exactly
  return opts;
}

/// Fixture owning the dataset/CKG/PPR shared by every scenario.
class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest()
      : dataset_(TinyDataset()),
        ckg_(dataset_.BuildCkg()),
        ppr_(PprTable::Compute(ckg_)) {}

  std::unique_ptr<Kucnet> NewModel() {
    return std::make_unique<Kucnet>(&dataset_, &ckg_, &ppr_,
                                    SmallKucnetOptions());
  }

  std::string CheckpointBytes(Kucnet& model, const std::string& path) {
    model.SaveCheckpoint(path);
    std::string bytes;
    KUC_CHECK(DefaultFileSystem().ReadFile(path, &bytes).ok());
    return bytes;
  }

  Dataset dataset_;
  Ckg ckg_;
  PprTable ppr_;
};

TEST_F(FaultToleranceTest, ResumeIsBitwiseIdenticalToUninterruptedRun) {
  constexpr int kTotalEpochs = 6;
  constexpr int kInterruptAfter = 3;

  for (const int threads : {1, 4}) {
    SetGlobalPoolThreads(threads);
    const std::string tag = "t" + std::to_string(threads);

    // Reference: one uninterrupted run.
    TrainOptions full;
    full.epochs = kTotalEpochs;
    full.checkpoint_dir = ScratchDir("resume_full_" + tag);
    auto model_a = NewModel();
    const TrainResult run_a = TrainModel(*model_a, dataset_, full);
    ASSERT_EQ(run_a.curve.size(), static_cast<size_t>(kTotalEpochs));

    // "Crashed" run: train part way, drop the model entirely, then resume
    // with a brand-new model instance from the on-disk snapshot.
    const std::string dir = ScratchDir("resume_part_" + tag);
    TrainOptions part;
    part.epochs = kInterruptAfter;
    part.checkpoint_dir = dir;
    {
      auto doomed = NewModel();
      TrainModel(*doomed, dataset_, part);
    }

    TrainOptions cont = part;
    cont.epochs = kTotalEpochs;
    cont.resume = true;
    auto model_b = NewModel();
    const TrainResult run_b = TrainModel(*model_b, dataset_, cont);
    EXPECT_EQ(run_b.resumed_from_epoch, kInterruptAfter);
    ASSERT_EQ(run_b.curve.size(), static_cast<size_t>(kTotalEpochs));

    // Same learning curve (the restored prefix and the replayed suffix)...
    for (int e = 0; e < kTotalEpochs; ++e) {
      EXPECT_DOUBLE_EQ(run_a.curve[e].loss, run_b.curve[e].loss)
          << "epoch " << e + 1 << " loss differs at " << threads
          << " threads";
    }
    // ...same final metrics...
    EXPECT_DOUBLE_EQ(run_a.final_eval.recall, run_b.final_eval.recall);
    EXPECT_DOUBLE_EQ(run_a.final_eval.ndcg, run_b.final_eval.ndcg);
    // ...and a byte-identical final model checkpoint.
    const std::string bytes_a =
        CheckpointBytes(*model_a, ScratchDir("ck_" + tag) + "/a.kuc");
    const std::string bytes_b =
        CheckpointBytes(*model_b, ScratchDir("ck_" + tag) + "/b.kuc");
    EXPECT_EQ(bytes_a, bytes_b)
        << "final checkpoints differ at " << threads << " threads";
  }
  SetGlobalPoolThreads(1);
}

TEST_F(FaultToleranceTest, NonFiniteLossRollsBackAndRunCompletes) {
  auto model = NewModel();
  const double initial_lr =
      model->MutableOptimizer()->options().learning_rate;

  TrainOptions opts;
  opts.epochs = 5;
  opts.max_rollbacks = 3;
  opts.rollback_lr_backoff = 0.5;
  // Poison every parameter after epoch 2's snapshot was captured: epoch 3
  // then trains on NaN weights and must be rolled back.
  opts.post_snapshot_hook = [](int epoch, RankModel& m) {
    if (epoch == 2) PoisonParams(m);
  };

  const TrainResult result = TrainModel(*model, dataset_, opts);

  EXPECT_EQ(result.rollbacks, 1);
  ASSERT_EQ(result.curve.size(), 5u);  // the poisoned attempt is not recorded
  for (const EpochRecord& r : result.curve) {
    EXPECT_TRUE(std::isfinite(r.loss)) << "epoch " << r.epoch;
  }
  EXPECT_TRUE(std::isfinite(result.final_eval.recall));
  EXPECT_TRUE(std::isfinite(result.final_eval.ndcg));
  // The backoff stuck: one rollback halves the learning rate.
  EXPECT_DOUBLE_EQ(model->MutableOptimizer()->options().learning_rate,
                   initial_lr * 0.5);
  // And the final weights are clean.
  for (const Parameter* p : model->Params()) {
    EXPECT_TRUE(std::isfinite(p->value().Sum())) << p->name();
  }
}

using FaultToleranceDeathTest = FaultToleranceTest;

TEST_F(FaultToleranceDeathTest, ExhaustedRollbackBudgetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto model = NewModel();
  TrainOptions opts;
  opts.epochs = 4;
  opts.max_rollbacks = 1;
  // Re-poison after every epoch: the retry budget cannot keep up.
  opts.post_snapshot_hook = [](int epoch, RankModel& m) {
    if (epoch >= 2) PoisonParams(m);
  };
  EXPECT_DEATH(TrainModel(*model, dataset_, opts), "non-finite loss");
}

TEST_F(FaultToleranceTest, SnapshotIoCrashSweepNeverAbortsTraining) {
  // Learn how many IO ops a clean checkpointed run performs...
  FaultInjectingFileSystem faulty(&DefaultFileSystem());
  TrainOptions opts;
  opts.epochs = 3;
  opts.fs = &faulty;
  {
    opts.checkpoint_dir = ScratchDir("sweep_probe");
    auto model = NewModel();
    TrainModel(*model, dataset_, opts);
  }
  const int64_t total_ops = faulty.op_count();
  ASSERT_GE(total_ops, opts.epochs);  // at least one write per epoch

  // ...then kill the IO at every op, in both failure modes. Training must
  // always complete, and the checkpoint directory must never be left in a
  // state the resume path cannot handle: the newest *valid* snapshot loads,
  // or there is none and resume starts from scratch.
  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    for (int64_t n = 1; n <= total_ops; ++n) {
      const std::string dir = ScratchDir("sweep_run");
      opts.checkpoint_dir = dir;
      faulty.FailFrom(n, mode);
      auto model = NewModel();
      const TrainResult result = TrainModel(*model, dataset_, opts);
      faulty.Disarm();
      ASSERT_EQ(result.curve.size(), 3u)
          << "training lost epochs, mode=" << static_cast<int>(mode)
          << " n=" << n;
      EXPECT_GE(faulty.faults_fired(), 1) << "fault never fired, n=" << n;

      std::string path;
      const int found = FindLatestTrainSnapshot(dir, &path);
      if (found >= 0) {
        auto probe = NewModel();
        TrainSnapshotMeta meta;
        EXPECT_TRUE(ReadTrainSnapshot(path, &meta, probe->Params(),
                                      probe->MutableOptimizer())
                        .ok())
            << "mode=" << static_cast<int>(mode) << " n=" << n;
        EXPECT_EQ(meta.epoch, found);
      }
    }
  }
}

}  // namespace
}  // namespace kucnet
