#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/ckg.h"
#include "ppr/ppr.h"
#include "testing/fuzz.h"
#include "testing/oracle.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kucnet {
namespace {

// Connected random CKG without parallel (multi-relation) edges, so the push
// walk and the deduplicated adjacency walk coincide exactly.
Ckg SimpleRandomCkg(uint64_t seed, int64_t users = 5, int64_t items = 12,
                    int64_t extra = 6) {
  Rng rng(seed);
  std::vector<std::array<int64_t, 2>> inter;
  // A spanning chain of interactions keeps the graph connected.
  for (int64_t u = 0; u < users; ++u) {
    inter.push_back({u, u % items});
    inter.push_back({u, (u + 1) % items});
  }
  for (int k = 0; k < 10; ++k) {
    inter.push_back({rng.UniformInt(users), rng.UniformInt(items)});
  }
  std::vector<std::array<int64_t, 3>> kg;
  const int64_t kg_nodes = items + extra;
  for (int64_t v = items; v < kg_nodes; ++v) {
    kg.push_back({rng.UniformInt(items), 0, v});  // each entity linked
  }
  for (int k = 0; k < 10; ++k) {
    const int64_t h = rng.UniformInt(kg_nodes);
    int64_t t = rng.UniformInt(kg_nodes);
    if (t == h) t = (t + 1) % kg_nodes;
    kg.push_back({h, 0, t});
  }
  // Single relation id 0 throughout: (h, 0, t) duplicates collapse in Build.
  return Ckg::Build(users, items, kg_nodes, 1, inter, kg);
}

TEST(PprTest, PowerIterationIsAProbabilityVector) {
  Ckg g = SimpleRandomCkg(1);
  SparseMatrix m = g.AdjacencyMatrix().ColumnNormalized();
  const auto r = PprPowerIteration(m, g.UserNode(0), 0.15, 50);
  real_t total = std::accumulate(r.begin(), r.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (const real_t x : r) EXPECT_GE(x, 0.0);
}

TEST(PprTest, RestartMassConcentratesAtSource) {
  Ckg g = SimpleRandomCkg(2);
  SparseMatrix m = g.AdjacencyMatrix().ColumnNormalized();
  const int64_t src = g.UserNode(1);
  const auto r = PprPowerIteration(m, src, 0.15, 50);
  // The source must hold at least the restart probability.
  EXPECT_GE(r[src], 0.15);
  // And be the argmax in this small graph.
  EXPECT_EQ(std::max_element(r.begin(), r.end()) - r.begin(), src);
}

TEST(PprTest, HigherAlphaMeansMoreMassAtSource) {
  Ckg g = SimpleRandomCkg(3);
  SparseMatrix m = g.AdjacencyMatrix().ColumnNormalized();
  const int64_t src = g.UserNode(0);
  const auto r_low = PprPowerIteration(m, src, 0.1, 50);
  const auto r_high = PprPowerIteration(m, src, 0.5, 50);
  EXPECT_GT(r_high[src], r_low[src]);
}

TEST(PprTest, ForwardPushApproximatesPowerIteration) {
  Ckg g = SimpleRandomCkg(4);
  SparseMatrix m = g.AdjacencyMatrix().ColumnNormalized();
  const int64_t src = g.UserNode(2);
  const auto exact = PprPowerIteration(m, src, 0.15, 200);
  const auto push = PprForwardPush(g, src, 0.15, 1e-9);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const auto it = push.find(v);
    const real_t approx = it == push.end() ? 0.0 : it->second;
    EXPECT_NEAR(approx, exact[v], 1e-4) << "node " << v;
  }
}

TEST(PprTest, PushUndershootBound) {
  // Push estimates never exceed the exact PPR (residuals are nonnegative).
  Ckg g = SimpleRandomCkg(5);
  SparseMatrix m = g.AdjacencyMatrix().ColumnNormalized();
  const int64_t src = g.UserNode(0);
  const auto exact = PprPowerIteration(m, src, 0.15, 300);
  const auto push = PprForwardPush(g, src, 0.15, 1e-4);
  for (const auto& [node, value] : push) {
    EXPECT_LE(value, exact[node] + 1e-9) << "node " << node;
    EXPECT_GE(value, 0.0);
  }
}

TEST(PprTest, PushMassAtMostOne) {
  Ckg g = SimpleRandomCkg(6);
  const auto push = PprForwardPush(g, g.UserNode(1), 0.15, 1e-8);
  real_t total = 0.0;
  for (const auto& [node, value] : push) total += value;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.9);  // epsilon small enough to capture most mass
}

TEST(PprTableTest, SerialMatchesParallel) {
  Ckg g = SimpleRandomCkg(7);
  PprTableOptions opts;
  opts.epsilon = 1e-7;
  PprTable serial = PprTable::Compute(g, opts, nullptr);
  ThreadPool pool(4);
  PprTable parallel = PprTable::Compute(g, opts, &pool);
  ASSERT_EQ(serial.num_users(), parallel.num_users());
  for (int64_t u = 0; u < serial.num_users(); ++u) {
    const auto& a = serial.Vector(u);
    const auto& b = parallel.Vector(u);
    ASSERT_EQ(a.size(), b.size()) << "user " << u;
    for (const auto& [node, value] : a) {
      EXPECT_NEAR(value, b.at(node), 1e-12);
    }
  }
  EXPECT_GE(serial.compute_seconds(), 0.0);
}

TEST(PprTableTest, ScoreFnMatchesScore) {
  Ckg g = SimpleRandomCkg(8);
  PprTable table = PprTable::Compute(g);
  auto fn = table.ScoreFn(0);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fn(v), table.Score(0, v));
  }
  // Unranked nodes score 0 (node id outside any vector entry).
  EXPECT_EQ(table.Score(0, g.num_nodes() - 1),
            table.ScoreFn(0)(g.num_nodes() - 1));
}

TEST(PprTableTest, UsersNeighborhoodRanksAboveFarNodes) {
  // The user's own interacted items should outrank a node three hops away.
  Ckg g = SimpleRandomCkg(9);
  PprTable table = PprTable::Compute(g);
  const auto items = g.ItemsOfUser(0);
  ASSERT_FALSE(items.empty());
  const real_t near_score = table.Score(0, g.ItemNode(items[0]));
  EXPECT_GT(near_score, 0.0);
}

TEST(PprEdgeCaseTest, IsolatedUserKeepsMassAtSourceWithoutCrashing) {
  // User 2 never interacted: its node has no out-edges. The push walk must
  // terminate immediately with all restart mass stranded at the source, and
  // every item must score exactly zero — no crash, no division by zero.
  const std::vector<std::array<int64_t, 2>> inter = {{0, 0}, {1, 1}};
  const std::vector<std::array<int64_t, 3>> kg;
  Ckg g = Ckg::Build(3, 2, 2, 1, inter, kg);
  const auto push = PprForwardPush(g, g.UserNode(2), 0.15, 1e-8);
  ASSERT_EQ(push.size(), 1u);
  EXPECT_NEAR(push.at(g.UserNode(2)), 1.0, 1e-9);
  PprTable table = PprTable::Compute(g);
  for (int64_t item = 0; item < 2; ++item) {
    EXPECT_EQ(table.Score(2, g.ItemNode(item)), 0.0);
  }
}

TEST(PprEdgeCaseTest, EmptyKgStillRanksInteractedItems) {
  // No KG triplets at all: the CKG degenerates to the bipartite interaction
  // graph, which must still produce positive scores for interacted items.
  const std::vector<std::array<int64_t, 2>> inter = {{0, 0}, {0, 1}, {1, 1}};
  const std::vector<std::array<int64_t, 3>> kg;
  Ckg g = Ckg::Build(2, 2, 2, 1, inter, kg);
  PprTable table = PprTable::Compute(g);
  EXPECT_GT(table.Score(0, g.ItemNode(0)), 0.0);
  EXPECT_GT(table.Score(0, g.ItemNode(1)), 0.0);
  EXPECT_GT(table.Score(1, g.ItemNode(1)), 0.0);
}

TEST(PprEdgeCaseTest, EdgeFreeGraphScoresZeroEverywhere) {
  // Fully degenerate: no interactions and no KG. Every user is dangling;
  // Compute must not crash and items must be unranked (score 0).
  const std::vector<std::array<int64_t, 2>> inter;
  const std::vector<std::array<int64_t, 3>> kg;
  Ckg g = Ckg::Build(2, 3, 3, 1, inter, kg);
  PprTable table = PprTable::Compute(g);
  for (int64_t user = 0; user < 2; ++user) {
    for (int64_t item = 0; item < 3; ++item) {
      EXPECT_EQ(table.Score(user, g.ItemNode(item)), 0.0);
    }
    // The stranded restart mass shows up at the user's own node.
    EXPECT_NEAR(table.Score(user, g.UserNode(user)), 1.0, 1e-9);
  }
}

TEST(PprOracleTest, PushMatchesOracleOnGraphWithDanglingNodes) {
  // Entities 12..17 exist in the KG id space but appear in no triplet, so
  // their nodes have no edges at all; user 3 is isolated too. The optimized
  // push and the naive oracle push share the same queue discipline and
  // arithmetic order, so their estimates must agree bitwise, dangling
  // absorption included.
  const std::vector<std::array<int64_t, 2>> inter = {
      {0, 0}, {0, 1}, {1, 1}, {2, 0}, {2, 2}};
  const std::vector<std::array<int64_t, 3>> kg = {
      {0, 0, 3}, {1, 0, 3}, {2, 0, 4}, {4, 0, 5}};
  Ckg g = Ckg::Build(4, 3, 18, 1, inter, kg);
  for (int64_t source = 0; source < g.num_nodes(); ++source) {
    const auto push = PprForwardPush(g, source, 0.2, 1e-7);
    const testing::OraclePprResult oracle =
        testing::OraclePprPush(g, source, 0.2, 1e-7);
    ASSERT_EQ(push.size(), oracle.estimate.size()) << "source " << source;
    for (const auto& [node, value] : oracle.estimate) {
      const auto it = push.find(node);
      ASSERT_NE(it, push.end()) << "source " << source << " node " << node;
      EXPECT_EQ(testing::UlpDistance(it->second, value), 0u)
          << "source " << source << " node " << node;
    }
    // Termination accounting: estimate plus terminal residual is the full
    // unit of restart mass, dangling nodes or not.
    EXPECT_NEAR(oracle.total_mass, 1.0, 1e-9) << "source " << source;
  }
}

TEST(PprOracleTest, DanglingSourceAgainstDenseReference) {
  // Edges are stored in both directions, so any *reachable* node has an
  // out-edge; a dangling (edge-free) node can only ever be the source. Both
  // cases appear here: the walk from user 0 is checked against the converged
  // dense absorbing-walk reference within the push's undershoot bound, and
  // the edge-free kg node 2 stays completely unranked.
  const std::vector<std::array<int64_t, 2>> inter = {{0, 0}};
  const std::vector<std::array<int64_t, 3>> kg = {{0, 0, 1}};
  // Node layout: user 0, item node (kg id 0), entity node (kg id 1, only a
  // back-edge from the item), plus kg id 2 fully dangling.
  Ckg g = Ckg::Build(1, 1, 3, 1, inter, kg);
  const real_t epsilon = 1e-8;
  const auto push = PprForwardPush(g, g.UserNode(0), 0.15, epsilon);
  const testing::OracleDensePpr dense =
      testing::OraclePprDense(g, g.UserNode(0), 0.15, 600);
  real_t degree_sum = 0.0, undershoot = 0.0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const auto it = push.find(v);
    const real_t est = it == push.end() ? 0.0 : it->second;
    EXPECT_LE(est, dense.estimate[v] + 1e-12) << "node " << v;
    undershoot += dense.estimate[v] - est;
    degree_sum += static_cast<real_t>(g.OutDegree(v));
  }
  EXPECT_LE(undershoot, epsilon * degree_sum + 1e-8);
  // The fully dangling node is unreachable: no estimate at all.
  EXPECT_EQ(push.count(g.KgNode(2)), 0u);
}

TEST(PprOracleTest, MassConservationUnderFuzz) {
  // 200 random graphs with isolated users and dangling entities: every push
  // transcript must conserve mass (estimate + residual == 1) and match the
  // optimized implementation bitwise. FuzzPpr asserts both per case.
  testing::FuzzOptions options;
  options.seed = 424242;
  options.cases = 200;
  const testing::FuzzReport report = testing::FuzzPpr(options);
  EXPECT_TRUE(report.ok()) << report.first_failure;
  EXPECT_EQ(report.cases_run, 200);
}

}  // namespace
}  // namespace kucnet
