#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/pathsim.h"
#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace kucnet {
namespace {

SyntheticConfig TinyConfig(uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 10;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 8;
  cfg.kg_noise = 0.05;
  cfg.entity_entity_edges_per_topic = 6;
  return cfg;
}

/// Shared, lazily-built environment so the parameterized smoke tests do not
/// rebuild the dataset/PPR per model.
struct Env {
  Env()
      : dataset([] {
          Rng rng(7);
          return TraditionalSplit(GenerateSynthetic(TinyConfig()).raw, 0.25,
                                  rng);
        }()),
        ckg(dataset.BuildCkg()),
        ppr(PprTable::Compute(ckg)) {}
  Dataset dataset;
  Ckg ckg;
  PprTable ppr;
};

const Env& SharedEnv() {
  static const Env* env = new Env;
  return *env;
}

ModelContext MakeContext(const Env& env) {
  ModelContext ctx;
  ctx.dataset = &env.dataset;
  ctx.ckg = &env.ckg;
  ctx.ppr = &env.ppr;
  ctx.dim = 12;
  ctx.kucnet.hidden_dim = 12;
  ctx.kucnet.attention_dim = 3;
  ctx.kucnet.sample_k = 10;
  return ctx;
}

// ---- Parameterized smoke test over every model -----------------------------

class ModelSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSmokeTest, ConstructTrainScore) {
  const Env& env = SharedEnv();
  auto model = CreateModel(GetParam(), MakeContext(env));
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());

  // Heuristics report zero parameters; trainable models report > 0.
  const bool heuristic = GetParam() == "PPR" || GetParam() == "PathSim";
  if (heuristic) {
    EXPECT_EQ(model->ParamCount(), 0);
  } else {
    EXPECT_GT(model->ParamCount(), 0);
  }

  Rng rng(1);
  const double loss = model->TrainEpoch(rng);
  EXPECT_GE(loss, 0.0);

  const auto scores = model->ScoreItems(0);
  EXPECT_EQ(static_cast<int64_t>(scores.size()), env.dataset.num_items);
  for (const double s : scores) {
    EXPECT_TRUE(std::isfinite(s)) << GetParam();
  }

  // Scoring twice is deterministic (no hidden mutable state).
  EXPECT_EQ(scores, model->ScoreItems(0)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSmokeTest,
                         ::testing::ValuesIn(AllModelNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(RegistryTest, NameListsAreConsistent) {
  const auto all = AllModelNames();
  for (const auto& n : TraditionalBaselineNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), n), all.end()) << n;
  }
  for (const auto& n : InductiveBaselineNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), n), all.end()) << n;
  }
  EXPECT_GE(DefaultEpochs("MF"), 1);
  EXPECT_EQ(DefaultEpochs("PPR"), 0);
  EXPECT_EQ(DefaultEpochs("PathSim"), 0);
}

TEST(RegistryDeathTest, UnknownModelAborts) {
  const Env& env = SharedEnv();
  EXPECT_DEATH(CreateModel("NotAModel", MakeContext(env)), "unknown model");
}

// ---- Behavioral tests -------------------------------------------------------

TEST(MfTest, LearnsCollaborativeSignal) {
  const Env& env = SharedEnv();
  auto model = CreateModel("MF", MakeContext(env));
  Rng rng(2);
  double first = model->TrainEpoch(rng);
  double last = first;
  for (int e = 0; e < 30; ++e) last = model->TrainEpoch(rng);
  EXPECT_LT(last, first);
  const EvalResult eval = EvaluateRanking(*model, env.dataset);
  // Chance recall@20 over 60 items is ~1/3; MF should beat it.
  EXPECT_GT(eval.recall, 0.4) << ToString(eval);
}

TEST(NewItemTest, EmbeddingModelsCollapseButInductiveOnesDoNot) {
  // The central contrast of Table IV, reproduced in miniature: on a
  // new-item split MF is blind (untrained item embeddings) while PathSim
  // reaches new items through the KG.
  // Enough held-out items that the top-20 cannot cover the whole new-item
  // pool (the new-item protocol ranks new items only).
  SyntheticConfig cfg = TinyConfig(43);
  cfg.num_users = 80;
  cfg.num_items = 300;
  Rng rng(3);
  Dataset d = NewItemSplit(GenerateSynthetic(cfg).raw, 0.2, rng);
  Ckg ckg = d.BuildCkg();
  PprTable ppr = PprTable::Compute(ckg);
  ModelContext ctx;
  ctx.dataset = &d;
  ctx.ckg = &ckg;
  ctx.ppr = &ppr;
  ctx.dim = 12;
  ctx.kucnet.hidden_dim = 12;
  ctx.kucnet.attention_dim = 3;
  ctx.kucnet.sample_k = 10;

  auto mf = CreateModel("MF", ctx);
  Rng rng2(4);
  for (int e = 0; e < 20; ++e) mf->TrainEpoch(rng2);
  const EvalResult mf_eval = EvaluateRanking(*mf, d);

  auto pathsim = CreateModel("PathSim", ctx);
  const EvalResult ps_eval = EvaluateRanking(*pathsim, d);

  EXPECT_GT(ps_eval.recall, 0.0);
  EXPECT_GT(ps_eval.recall, mf_eval.recall) << "PathSim " << ps_eval.recall
                                            << " vs MF " << mf_eval.recall;
}

TEST(PathSimTest, CountPathsHandVerified) {
  // Two users, two items, one shared: u0-i0, u1-i0, u1-i1. The U-I-U-I path
  // from u0 must reach i1 exactly once (u0-i0-u1-i1) and i0 once
  // (u0-i0-u1-i0? no: u1 interacted i0 and i1, so i0 via u1 counts 1, plus
  // u0-i0-u0-i0 = 1 more).
  std::vector<std::array<int64_t, 2>> inter = {{0, 0}, {1, 0}, {1, 1}};
  Dataset d;
  d.num_users = 2;
  d.num_items = 2;
  d.num_kg_nodes = 2;
  d.num_kg_relations = 0;
  d.train = inter;
  Ckg ckg = d.BuildCkg();
  PathSim model(&d, &ckg);
  const int64_t interact = Ckg::kInteractRelation;
  const int64_t inv = ckg.InverseRelation(interact);
  const MetaPath uiui = {{interact}, {inv}, {interact}};
  const auto counts = model.CountPaths(ckg.UserNode(0), uiui);
  // Paths from u0: u0-i0-u0-i0 (1), u0-i0-u1-i0 (1), u0-i0-u1-i1 (1).
  EXPECT_EQ(counts[ckg.ItemNode(0)], 2.0);
  EXPECT_EQ(counts[ckg.ItemNode(1)], 1.0);
}

TEST(PprRecTest, NeighborhoodOutranksFarItems) {
  const Env& env = SharedEnv();
  auto model = CreateModel("PPR", MakeContext(env));
  const auto train_items = env.dataset.TrainItemsByUser();
  ASSERT_FALSE(train_items[0].empty());
  const auto scores = model->ScoreItems(0);
  // The user's own training items have positive PPR mass.
  for (const int64_t i : train_items[0]) {
    EXPECT_GT(scores[i], 0.0);
  }
}

TEST(RedGnnTest, DiffersFromKucnet) {
  const Env& env = SharedEnv();
  ModelContext ctx = MakeContext(env);
  auto redgnn = CreateModel("REDGNN", ctx);
  auto kucnet = CreateModel("KUCNet", ctx);
  // Same seed, but different pruning/attention: scores must differ.
  EXPECT_NE(redgnn->ScoreItems(0), kucnet->ScoreItems(0));
  EXPECT_LT(redgnn->ParamCount(), kucnet->ParamCount());
}

TEST(KginTest, NewItemRepsUseKgNeighborhood) {
  // A KGIN item with KG neighbors must score differently from a hypothetical
  // bare embedding: verify the KG aggregation path is active by checking
  // that two items with identical embeddings rank differently... simplest
  // faithful check: scores change after training only the KG side would be
  // hard to isolate, so assert training beats chance on the traditional
  // split (the aggregation must not break learning).
  const Env& env = SharedEnv();
  auto model = CreateModel("KGIN", MakeContext(env));
  Rng rng(5);
  for (int e = 0; e < 25; ++e) model->TrainEpoch(rng);
  const EvalResult eval = EvaluateRanking(*model, env.dataset);
  EXPECT_GT(eval.recall, 0.4) << ToString(eval);
}

}  // namespace
}  // namespace kucnet
