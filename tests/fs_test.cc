// The filesystem seam: real-FS behaviour, atomic replacement, and the
// deterministic fault-injection layer every crash-safety test drives.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/fs.h"
#include "util/io.h"

namespace kucnet {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FileSystemTest, WriteReadRoundTrip) {
  FileSystem& fs = DefaultFileSystem();
  const std::string path = TempPath("fs_roundtrip.bin");
  const std::string data("hello\0world\n\xff binary", 20);
  ASSERT_TRUE(fs.WriteFile(path, data).ok());
  std::string back;
  ASSERT_TRUE(fs.ReadFile(path, &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_TRUE(fs.Exists(path));
  ASSERT_TRUE(fs.Remove(path).ok());
  EXPECT_FALSE(fs.Exists(path));
}

TEST(FileSystemTest, ReadMissingFileIsError) {
  std::string out;
  const Status st = DefaultFileSystem().ReadFile(
      TempPath("definitely_missing_file"), &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cannot open"), std::string::npos);
}

TEST(FileSystemTest, MakeDirsAndListDir) {
  FileSystem& fs = DefaultFileSystem();
  const std::string dir = TempPath("fs_listdir/a/b");
  ASSERT_TRUE(fs.MakeDirs(dir).ok());
  ASSERT_TRUE(fs.WriteFile(dir + "/two", "2").ok());
  ASSERT_TRUE(fs.WriteFile(dir + "/one", "1").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(fs.ListDir(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
  EXPECT_FALSE(fs.ListDir(dir + "/missing", &names).ok());
}

TEST(AtomicWriteFileTest, ReplacesContentAtomically) {
  FileSystem& fs = DefaultFileSystem();
  const std::string path = TempPath("atomic_replace.txt");
  ASSERT_TRUE(AtomicWriteFile(fs, path, "old").ok());
  ASSERT_TRUE(AtomicWriteFile(fs, path, "new").ok());
  std::string back;
  ASSERT_TRUE(fs.ReadFile(path, &back).ok());
  EXPECT_EQ(back, "new");
  EXPECT_FALSE(fs.Exists(path + ".tmp"));
}

TEST(FileSystemTest, SyncDirSucceedsOnRealDirectoriesAndFailsOnMissing) {
  FileSystem& fs = DefaultFileSystem();
  ASSERT_TRUE(fs.SyncDir(::testing::TempDir()).ok());
  EXPECT_FALSE(fs.SyncDir(TempPath("no_such_dir_for_sync")).ok());
  // AtomicWriteFile's final step is the directory sync; exercise the whole
  // write + fsync + rename + dir-fsync chain on the real filesystem.
  const std::string path = TempPath("atomic_synced.bin");
  ASSERT_TRUE(AtomicWriteFile(fs, path, "payload").ok());
  std::string back;
  ASSERT_TRUE(fs.ReadFile(path, &back).ok());
  EXPECT_EQ(back, "payload");
  ASSERT_TRUE(fs.Remove(path).ok());
}

TEST(AtomicWriteFileTest, FailedWriteLeavesTargetIntact) {
  FileSystem& fs = DefaultFileSystem();
  FaultInjectingFileSystem faulty(&fs);
  const std::string path = TempPath("atomic_faulted.txt");
  ASSERT_TRUE(AtomicWriteFile(faulty, path, "precious").ok());

  // Kill the temp-file write (op 1): clean failure and torn write both must
  // leave the existing target untouched.
  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    faulty.FailFrom(1, mode);
    EXPECT_FALSE(AtomicWriteFile(faulty, path, "replacement").ok());
    faulty.Disarm();
    std::string back;
    ASSERT_TRUE(fs.ReadFile(path, &back).ok());
    EXPECT_EQ(back, "precious");
  }

  // Kill the rename (op 2): same guarantee.
  faulty.FailFrom(2, FaultMode::kFailCleanly);
  EXPECT_FALSE(AtomicWriteFile(faulty, path, "replacement").ok());
  faulty.Disarm();
  std::string back;
  ASSERT_TRUE(fs.ReadFile(path, &back).ok());
  EXPECT_EQ(back, "precious");
}

TEST(FaultInjectingFileSystemTest, CountsOpsAndStaysDeadAfterFault) {
  FileSystem& fs = DefaultFileSystem();
  FaultInjectingFileSystem faulty(&fs);
  const std::string a = TempPath("fault_a"), b = TempPath("fault_b");

  faulty.FailFrom(3, FaultMode::kFailCleanly);
  EXPECT_TRUE(faulty.WriteFile(a, "1").ok());   // op 1
  EXPECT_TRUE(faulty.WriteFile(b, "2").ok());   // op 2
  EXPECT_FALSE(faulty.WriteFile(a, "3").ok());  // op 3: fault fires
  // The "process" is dead: every later op fails too.
  std::string out;
  EXPECT_FALSE(faulty.ReadFile(a, &out).ok());
  EXPECT_FALSE(faulty.Rename(a, b).ok());
  EXPECT_FALSE(faulty.Remove(a).ok());
  EXPECT_EQ(faulty.op_count(), 6);
  EXPECT_EQ(faulty.faults_fired(), 4);

  faulty.Disarm();
  ASSERT_TRUE(faulty.ReadFile(a, &out).ok());
  EXPECT_EQ(out, "1");  // the faulted write landed nothing
}

TEST(FaultInjectingFileSystemTest, TornWritePersistsPrefix) {
  FileSystem& fs = DefaultFileSystem();
  FaultInjectingFileSystem faulty(&fs);
  const std::string path = TempPath("torn_write.bin");
  faulty.FailFrom(1, FaultMode::kTear);
  EXPECT_FALSE(faulty.WriteFile(path, "0123456789").ok());
  faulty.Disarm();
  std::string back;
  ASSERT_TRUE(fs.ReadFile(path, &back).ok());
  EXPECT_EQ(back, "01234");  // half the bytes hit the disk
}

TEST(FaultInjectingFileSystemTest, RenameStepFailureIsCleanInBothModes) {
  // Rename is the commit point of every atomic write (and of WAL segment
  // seals): a fault there must be all-or-nothing in *both* modes — kTear
  // models torn data writes, but a metadata rename cannot half-happen.
  InMemoryFileSystem mem;
  FaultInjectingFileSystem faulty(&mem);
  ASSERT_TRUE(faulty.WriteFile("seg.open", "payload").ok());
  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    faulty.FailFrom(1, mode);  // the very next op is the rename
    EXPECT_FALSE(faulty.Rename("seg.open", "seg.log").ok());
    faulty.Disarm();
    std::string back;
    ASSERT_TRUE(mem.ReadFile("seg.open", &back).ok());
    EXPECT_EQ(back, "payload");          // source intact, byte for byte
    EXPECT_FALSE(mem.Exists("seg.log"));  // destination never appeared
  }
  EXPECT_EQ(faulty.faults_fired(), 2);  // one fired rename per armed mode
  // Disarmed, the same rename commits whole.
  ASSERT_TRUE(faulty.Rename("seg.open", "seg.log").ok());
  EXPECT_FALSE(mem.Exists("seg.open"));
  std::string back;
  ASSERT_TRUE(mem.ReadFile("seg.log", &back).ok());
  EXPECT_EQ(back, "payload");
}

TEST(FaultInjectingFileSystemTest, TornReadReturnsPrefixSuccessfully) {
  FileSystem& fs = DefaultFileSystem();
  FaultInjectingFileSystem faulty(&fs);
  const std::string path = TempPath("torn_read.bin");
  ASSERT_TRUE(fs.WriteFile(path, "0123456789").ok());
  faulty.FailFrom(1, FaultMode::kTear);
  std::string back;
  ASSERT_TRUE(faulty.ReadFile(path, &back).ok());  // no error: a torn read
  EXPECT_EQ(back, "01234");                        // is silent truncation
}

TEST(IoTest, MalformedRowsReportFileLineAndCause) {
  FileSystem& fs = DefaultFileSystem();
  const std::string path = TempPath("bad_table.txt");
  ASSERT_TRUE(fs.WriteFile(path, "# comment\n1 2\n3 4 5\n6 7\n").ok());

  std::vector<std::vector<int64_t>> rows;
  Status st = TryReadIntTable(path, 2, &rows);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find(path + ":3"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("expected 2 fields, got 3"), std::string::npos);

  ASSERT_TRUE(fs.WriteFile(path, "1 2\n3 abc\n").ok());
  st = TryReadIntTable(path, 2, &rows);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find(path + ":2"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("non-integer token 'abc'"), std::string::npos);
}

// ---- FileSize / ReadFileRange / MapReadOnly (the container-load seam) -------

TEST(FileSystemTest, FileSizeAndRangeReadsOnRealFilesystem) {
  FileSystem& fs = DefaultFileSystem();
  const std::string path = TempPath("fs_ranges.bin");
  const std::string data = "0123456789abcdef";
  ASSERT_TRUE(fs.WriteFile(path, data).ok());

  uint64_t size = 0;
  ASSERT_TRUE(fs.FileSize(path, &size).ok());
  EXPECT_EQ(size, data.size());
  EXPECT_FALSE(fs.FileSize(TempPath("definitely_missing"), &size).ok());

  std::string mid;
  ASSERT_TRUE(fs.ReadFileRange(path, 4, 6, &mid).ok());
  EXPECT_EQ(mid, "456789");
  std::string whole;
  ASSERT_TRUE(fs.ReadFileRange(path, 0, data.size(), &whole).ok());
  EXPECT_EQ(whole, data);
  // Ranges leaving the file fail with no partial output.
  std::string out = "untouched";
  EXPECT_FALSE(fs.ReadFileRange(path, 10, 7, &out).ok());
  EXPECT_FALSE(fs.ReadFileRange(path, data.size() + 1, 1, &out).ok());
  ASSERT_TRUE(fs.Remove(path).ok());
}

TEST(FileSystemTest, MapReadOnlyIsARealMappingOnTheRealFilesystem) {
  FileSystem& fs = DefaultFileSystem();
  const std::string path = TempPath("fs_mmap.bin");
  const std::string data("mapped\0bytes", 12);
  ASSERT_TRUE(fs.WriteFile(path, data).ok());
  MappedFile map;
  ASSERT_TRUE(fs.MapReadOnly(path, &map).ok());
  EXPECT_TRUE(map.is_mmap());
  ASSERT_EQ(map.size(), data.size());
  EXPECT_EQ(std::string(map.data(), map.size()), data);

  // Moves keep the view stable; the moved-from object is empty.
  MappedFile moved = std::move(map);
  EXPECT_EQ(std::string(moved.data(), moved.size()), data);
  EXPECT_EQ(map.size(), 0u);

  // An empty file maps to a valid empty view.
  ASSERT_TRUE(fs.WriteFile(path, "").ok());
  MappedFile empty;
  ASSERT_TRUE(fs.MapReadOnly(path, &empty).ok());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(fs.MapReadOnly(TempPath("definitely_missing"), &empty).ok());
  ASSERT_TRUE(fs.Remove(path).ok());
}

TEST(InMemoryFileSystemTest, SizeRangeAndMapGoThroughTheSameSeam) {
  InMemoryFileSystem fs;
  const std::string data = "in-memory container bytes";
  ASSERT_TRUE(fs.WriteFile("/d/file", data).ok());

  uint64_t size = 0;
  ASSERT_TRUE(fs.FileSize("/d/file", &size).ok());
  EXPECT_EQ(size, data.size());
  std::string range;
  ASSERT_TRUE(fs.ReadFileRange("/d/file", 3, 6, &range).ok());
  EXPECT_EQ(range, "memory");
  EXPECT_FALSE(fs.ReadFileRange("/d/file", 20, 10, &range).ok());

  MappedFile map;
  ASSERT_TRUE(fs.MapReadOnly("/d/file", &map).ok());
  EXPECT_FALSE(map.is_mmap());  // heap emulation, same API
  EXPECT_EQ(std::string(map.data(), map.size()), data);
  // The emulated mapping is a copy: later writes do not mutate it.
  ASSERT_TRUE(fs.WriteFile("/d/file", "overwritten").ok());
  EXPECT_EQ(std::string(map.data(), map.size()), data);
  EXPECT_FALSE(fs.MapReadOnly("/d/missing", &map).ok());
}

TEST(FaultInjectingFileSystemTest, FileSizeFaultsCleanlyInBothModes) {
  InMemoryFileSystem base;
  ASSERT_TRUE(base.WriteFile("/f", "12345678").ok());
  FaultInjectingFileSystem faulty(&base);
  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    faulty.FailFrom(1, mode);
    uint64_t size = 0;
    EXPECT_FALSE(faulty.FileSize("/f", &size).ok());  // a stat cannot tear
    faulty.Disarm();
    ASSERT_TRUE(faulty.FileSize("/f", &size).ok());
    EXPECT_EQ(size, 8u);
  }
}

TEST(FaultInjectingFileSystemTest, TornRangeReadReturnsHalfSuccessfully) {
  InMemoryFileSystem base;
  ASSERT_TRUE(base.WriteFile("/f", "0123456789").ok());
  FaultInjectingFileSystem faulty(&base);

  faulty.FailFrom(1, FaultMode::kTear);
  std::string out;
  // The torn read *succeeds* with the first half of the range — only
  // downstream length/checksum validation can catch it.
  ASSERT_TRUE(faulty.ReadFileRange("/f", 2, 6, &out).ok());
  EXPECT_EQ(out, "234");
  // The process "crashed": every later op fails until Disarm.
  EXPECT_FALSE(faulty.ReadFileRange("/f", 0, 4, &out).ok());
  faulty.Disarm();
  ASSERT_TRUE(faulty.ReadFileRange("/f", 0, 4, &out).ok());
  EXPECT_EQ(out, "0123");

  faulty.FailFrom(1, FaultMode::kFailCleanly);
  out = "untouched";
  EXPECT_FALSE(faulty.ReadFileRange("/f", 0, 4, &out).ok());
  EXPECT_EQ(out, "untouched");
  faulty.Disarm();
}

TEST(FaultInjectingFileSystemTest, TornMapSeesHalfTheFile) {
  InMemoryFileSystem base;
  ASSERT_TRUE(base.WriteFile("/f", "0123456789").ok());
  FaultInjectingFileSystem faulty(&base);

  MappedFile map;
  ASSERT_TRUE(faulty.MapReadOnly("/f", &map).ok());
  EXPECT_FALSE(map.is_mmap());  // always emulated so faults can apply
  EXPECT_EQ(std::string(map.data(), map.size()), "0123456789");

  faulty.FailFrom(1, FaultMode::kTear);
  MappedFile torn;
  ASSERT_TRUE(faulty.MapReadOnly("/f", &torn).ok());
  EXPECT_EQ(std::string(torn.data(), torn.size()), "01234");
  EXPECT_FALSE(faulty.MapReadOnly("/f", &torn).ok());  // dead after fault
  faulty.Disarm();

  faulty.FailFrom(1, FaultMode::kFailCleanly);
  EXPECT_FALSE(faulty.MapReadOnly("/f", &torn).ok());
  faulty.Disarm();
}

TEST(IoTest, ReadIntTableReportsSourceLineNumbers) {
  FileSystem& fs = DefaultFileSystem();
  const std::string path = TempPath("line_numbers.txt");
  ASSERT_TRUE(fs.WriteFile(path, "# header\n\n1 2\n# mid\n3 4\n").ok());
  std::vector<std::vector<int64_t>> rows;
  std::vector<int64_t> lines;
  ASSERT_TRUE(TryReadIntTable(path, 2, &rows, &lines).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(lines, (std::vector<int64_t>{3, 5}));
}

}  // namespace
}  // namespace kucnet
