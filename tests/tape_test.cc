#include <cmath>

#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "tensor/matrix.h"
#include "tensor/parameter.h"
#include "tensor/tape.h"
#include "util/rng.h"

namespace kucnet {
namespace {

Parameter MakeParam(const std::string& name, int64_t r, int64_t c,
                    uint64_t seed) {
  Rng rng(seed);
  return Parameter(name, Matrix::RandomNormal(r, c, 0.7, rng));
}

// ---- Forward-value unit tests ----------------------------------------------

TEST(TapeForwardTest, ConstantAndValue) {
  Tape tape;
  Matrix m = Matrix::Filled(2, 2, 3.0);
  Var v = tape.Constant(m);
  EXPECT_TRUE(tape.value(v).Equals(m));
}

TEST(TapeForwardTest, AddSubHadamard) {
  Tape tape;
  Var a = tape.Constant(Matrix::Filled(2, 2, 3.0));
  Var b = tape.Constant(Matrix::Filled(2, 2, 2.0));
  EXPECT_EQ(tape.value(tape.Add(a, b)).at(0, 0), 5.0);
  EXPECT_EQ(tape.value(tape.Sub(a, b)).at(1, 1), 1.0);
  EXPECT_EQ(tape.value(tape.Hadamard(a, b)).at(0, 1), 6.0);
  EXPECT_EQ(tape.value(tape.ScalarMul(a, -2.0)).at(0, 0), -6.0);
}

TEST(TapeForwardTest, Activations) {
  Tape tape;
  Matrix x(1, 4);
  x.at(0, 0) = -2.0;
  x.at(0, 1) = 0.0;
  x.at(0, 2) = 1.0;
  x.at(0, 3) = 3.0;
  Var v = tape.Constant(x);
  const Matrix& relu = tape.value(tape.Relu(v));
  EXPECT_EQ(relu.at(0, 0), 0.0);
  EXPECT_EQ(relu.at(0, 3), 3.0);
  const Matrix& lrelu = tape.value(tape.LeakyRelu(v, 0.1));
  EXPECT_NEAR(lrelu.at(0, 0), -0.2, 1e-12);
  const Matrix& th = tape.value(tape.Tanh(v));
  EXPECT_NEAR(th.at(0, 2), std::tanh(1.0), 1e-12);
  const Matrix& sg = tape.value(tape.Sigmoid(v));
  EXPECT_NEAR(sg.at(0, 1), 0.5, 1e-12);
  const Matrix& sp = tape.value(tape.Softplus(v));
  EXPECT_NEAR(sp.at(0, 1), std::log(2.0), 1e-12);
  // Softplus is stable at large |x|.
  Tape tape2;
  Matrix big(1, 2);
  big.at(0, 0) = 800.0;
  big.at(0, 1) = -800.0;
  const Matrix& sp2 = tape2.value(tape2.Softplus(tape2.Constant(big)));
  EXPECT_NEAR(sp2.at(0, 0), 800.0, 1e-9);
  EXPECT_NEAR(sp2.at(0, 1), 0.0, 1e-9);
}

TEST(TapeForwardTest, GatherAndSegmentSum) {
  Tape tape;
  Matrix x(3, 2);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 2; ++j) x.at(i, j) = 10.0 * i + j;
  Var v = tape.Constant(x);
  Var g = tape.Gather(v, {2, 0, 2});
  EXPECT_EQ(tape.value(g).rows(), 3);
  EXPECT_EQ(tape.value(g).at(0, 1), 21.0);
  EXPECT_EQ(tape.value(g).at(1, 0), 0.0);

  Var s = tape.SegmentSum(g, {1, 1, 0}, 3);
  EXPECT_EQ(tape.value(s).rows(), 3);
  EXPECT_EQ(tape.value(s).at(0, 0), 20.0);          // row 2 of x
  EXPECT_EQ(tape.value(s).at(1, 0), 20.0 + 0.0);    // rows 2 and 0
  EXPECT_EQ(tape.value(s).at(2, 0), 0.0);           // empty segment
}

TEST(TapeForwardTest, RowOpsAndSums) {
  Tape tape;
  Matrix x(2, 3);
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(0, 2) = 3;
  x.at(1, 0) = 4;
  x.at(1, 1) = 5;
  x.at(1, 2) = 6;
  Var v = tape.Constant(x);
  Matrix s(2, 1);
  s.at(0, 0) = 2.0;
  s.at(1, 0) = -1.0;
  Var scaled = tape.RowScale(v, tape.Constant(s));
  EXPECT_EQ(tape.value(scaled).at(0, 2), 6.0);
  EXPECT_EQ(tape.value(scaled).at(1, 0), -4.0);

  Var rd = tape.RowDot(v, v);
  EXPECT_EQ(tape.value(rd).at(0, 0), 14.0);
  EXPECT_EQ(tape.value(rd).at(1, 0), 77.0);

  Var rs = tape.RowSum(v);
  EXPECT_EQ(tape.value(rs).at(0, 0), 6.0);
  EXPECT_EQ(tape.value(rs).at(1, 0), 15.0);

  EXPECT_EQ(tape.value(tape.Sum(v)).at(0, 0), 21.0);
  EXPECT_NEAR(tape.value(tape.Mean(v)).at(0, 0), 3.5, 1e-12);

  Matrix row(1, 3);
  row.at(0, 0) = 10;
  row.at(0, 1) = 20;
  row.at(0, 2) = 30;
  Var br = tape.AddRowBroadcast(v, tape.Constant(row));
  EXPECT_EQ(tape.value(br).at(1, 2), 36.0);
}

TEST(TapeForwardTest, DropoutModes) {
  Rng rng(1);
  Tape tape;
  Var v = tape.Constant(Matrix::Filled(10, 10, 1.0));
  // Not training: identity (same node).
  Var same = tape.Dropout(v, 0.5, /*training=*/false, rng);
  EXPECT_EQ(same.id, v.id);
  // rate 0: identity.
  Var same2 = tape.Dropout(v, 0.0, /*training=*/true, rng);
  EXPECT_EQ(same2.id, v.id);
  // Training: entries are 0 or 1/keep.
  Var dropped = tape.Dropout(v, 0.5, /*training=*/true, rng);
  int zeros = 0;
  for (int64_t i = 0; i < 100; ++i) {
    const real_t x = tape.value(dropped).data()[i];
    EXPECT_TRUE(x == 0.0 || std::abs(x - 2.0) < 1e-12);
    zeros += (x == 0.0);
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(TapeForwardTest, BprLossValue) {
  Tape tape;
  Matrix pos(2, 1), neg(2, 1);
  pos.at(0, 0) = 2.0;
  neg.at(0, 0) = 0.0;
  pos.at(1, 0) = -1.0;
  neg.at(1, 0) = 1.0;
  Var loss = tape.BprLoss(tape.Constant(pos), tape.Constant(neg));
  const real_t expected = std::log1p(std::exp(-2.0)) + std::log1p(std::exp(2.0));
  EXPECT_NEAR(tape.value(loss).at(0, 0), expected, 1e-12);
}

// ---- Gradient checks for every op -------------------------------------------

TEST(TapeGradTest, MatMulChain) {
  Parameter w1 = MakeParam("w1", 4, 5, 11);
  Parameter w2 = MakeParam("w2", 5, 3, 12);
  auto fn = [&](Tape& t) {
    Var a = t.Param(&w1);
    Var b = t.Param(&w2);
    return t.Sum(t.Tanh(t.MatMul(a, b)));
  };
  auto r = CheckGradients({&w1, &w2}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(TapeGradTest, AddSubScalarMulBroadcast) {
  Parameter a = MakeParam("a", 3, 4, 21);
  Parameter b = MakeParam("b", 3, 4, 22);
  Parameter row = MakeParam("row", 1, 4, 23);
  auto fn = [&](Tape& t) {
    Var x = t.Add(t.Param(&a), t.ScalarMul(t.Param(&b), -0.5));
    Var y = t.Sub(x, t.Param(&b));
    Var z = t.AddRowBroadcast(y, t.Param(&row));
    return t.Sum(t.Square(z));
  };
  auto r = CheckGradients({&a, &b, &row}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(TapeGradTest, HadamardSharedInput) {
  Parameter a = MakeParam("a", 3, 3, 31);
  auto fn = [&](Tape& t) {
    Var x = t.Param(&a);
    return t.Sum(t.Hadamard(x, x));  // d/dx x*x = 2x through two paths
  };
  auto r = CheckGradients({&a}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

class ActivationGradTest : public ::testing::TestWithParam<int> {};

TEST_P(ActivationGradTest, MatchesFiniteDifference) {
  Parameter a = MakeParam("a", 4, 4, 41 + GetParam());
  // Shift values away from relu kink to keep finite differences clean.
  for (int64_t i = 0; i < a.value().size(); ++i) {
    if (std::abs(a.value().data()[i]) < 0.05) a.value().data()[i] += 0.1;
  }
  const int which = GetParam();
  auto fn = [&, which](Tape& t) {
    Var x = t.Param(&a);
    Var y;
    switch (which) {
      case 0: y = t.Relu(x); break;
      case 1: y = t.LeakyRelu(x, 0.2); break;
      case 2: y = t.Tanh(x); break;
      case 3: y = t.Sigmoid(x); break;
      case 4: y = t.Exp(x); break;
      case 5: y = t.Softplus(x); break;
      case 6: y = t.Square(x); break;
      default: {
        // Reciprocal on a well-conditioned positive input: 1 / (x^2 + 1).
        Var denom = t.AddRowBroadcast(
            t.Square(x), t.Constant(Matrix::Filled(1, 4, 1.0)));
        y = t.Reciprocal(denom);
        break;
      }
    }
    return t.Sum(t.Hadamard(y, y));
  };
  auto r = CheckGradients({&a}, fn, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << "activation " << which << " rel_err=" << r.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradTest,
                         ::testing::Range(0, 8));

TEST(TapeGradTest, GatherSegmentSumRoundTrip) {
  Parameter emb = MakeParam("emb", 6, 3, 51);
  std::vector<int64_t> idx = {0, 2, 2, 5, 1};
  std::vector<int64_t> seg = {0, 1, 0, 2, 2};
  auto fn = [&](Tape& t) {
    Var x = t.Param(&emb);
    Var g = t.Gather(x, idx);
    Var s = t.SegmentSum(g, seg, 4);
    return t.Sum(t.Tanh(s));
  };
  auto r = CheckGradients({&emb}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(TapeGradTest, GatherParamSparseLeaf) {
  Parameter emb = MakeParam("emb", 8, 4, 61);
  auto fn = [&](Tape& t) {
    Var g = t.GatherParam(&emb, {1, 3, 3, 7});
    return t.Sum(t.Sigmoid(g));
  };
  auto r = CheckGradients({&emb}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
  // Rows that were never gathered must have zero analytic gradient: verified
  // implicitly by finite differences (numeric grad is 0 there too).
}

TEST(TapeGradTest, RowScaleRowDotRowSum) {
  Parameter a = MakeParam("a", 5, 3, 71);
  Parameter b = MakeParam("b", 5, 3, 72);
  Parameter s = MakeParam("s", 5, 1, 73);
  auto fn = [&](Tape& t) {
    Var x = t.RowScale(t.Param(&a), t.Param(&s));
    Var d = t.RowDot(x, t.Param(&b));
    Var r = t.RowSum(t.Tanh(x));
    return t.Add(t.Sum(t.Square(d)), t.Sum(r));
  };
  auto r = CheckGradients({&a, &b, &s}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(TapeGradTest, BprLossGradient) {
  Parameter u = MakeParam("u", 4, 6, 81);
  Parameter i = MakeParam("i", 4, 6, 82);
  Parameter j = MakeParam("j", 4, 6, 83);
  auto fn = [&](Tape& t) {
    Var pos = t.RowDot(t.Param(&u), t.Param(&i));
    Var neg = t.RowDot(t.Param(&u), t.Param(&j));
    return t.BprLoss(pos, neg);
  };
  auto r = CheckGradients({&u, &i, &j}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(TapeGradTest, SoftmaxOverSegments) {
  // Attention-style per-segment softmax: exp / segment-sum(exp) gathered back.
  Parameter logits = MakeParam("logits", 6, 1, 91);
  Parameter vals = MakeParam("vals", 6, 3, 92);
  std::vector<int64_t> seg = {0, 0, 1, 1, 1, 2};
  auto fn = [&](Tape& t) {
    Var e = t.Exp(t.Param(&logits));
    Var denom = t.SegmentSum(e, seg, 3);
    Var denom_per_edge = t.Gather(denom, seg);
    Var w = t.Hadamard(e, t.Reciprocal(denom_per_edge));
    Var weighted = t.RowScale(t.Param(&vals), w);
    Var out = t.SegmentSum(weighted, seg, 3);
    return t.Sum(t.Square(out));
  };
  auto r = CheckGradients({&logits, &vals}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(TapeGradTest, ConstantGetsNoGradient) {
  Parameter a = MakeParam("a", 2, 2, 101);
  Tape tape;
  Var c = tape.Constant(Matrix::Filled(2, 2, 1.0));
  Var x = tape.Param(&a);
  Var loss = tape.Sum(tape.Hadamard(c, x));
  tape.Backward(loss);
  EXPECT_TRUE(a.has_grad());
  // Gradient wrt x is the constant.
  EXPECT_NEAR(a.grad().at(0, 0), 1.0, 1e-12);
  a.ZeroGrad();
  EXPECT_FALSE(a.has_grad());
}

TEST(TapeGradTest, LossWithoutParamsIsNoop) {
  Tape tape;
  Var c = tape.Constant(Matrix::Filled(1, 1, 2.0));
  tape.Backward(c);  // must not crash
  SUCCEED();
}

TEST(TapeGradTest, DropoutBackpropagatesMask) {
  Parameter a = MakeParam("a", 10, 10, 111);
  Rng rng(3);
  Tape tape;
  Var x = tape.Param(&a);
  Var y = tape.Dropout(x, 0.5, /*training=*/true, rng);
  Var loss = tape.Sum(y);
  tape.Backward(loss);
  // Gradient is exactly the mask (0 or 2).
  int zeros = 0;
  for (int64_t i = 0; i < 100; ++i) {
    const real_t g = a.grad().data()[i];
    EXPECT_TRUE(g == 0.0 || std::abs(g - 2.0) < 1e-12);
    zeros += (g == 0.0);
  }
  EXPECT_GT(zeros, 20);
  a.ZeroGrad();
}

TEST(TapeGradTest, GradAccumulatesAcrossUses) {
  // The same parameter used twice accumulates both paths.
  Parameter a = MakeParam("a", 2, 2, 121);
  auto fn = [&](Tape& t) {
    Var x = t.Param(&a);
    Var y = t.GatherParam(&a, {0, 1});
    return t.Add(t.Sum(x), t.Sum(y));
  };
  auto r = CheckGradients({&a}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

}  // namespace
}  // namespace kucnet
