#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/fault.h"

namespace kucnet {
namespace {

TEST(ClockTest, RealClockIsMonotonic) {
  Clock& clock = RealClock();
  const int64_t a = clock.NowMicros();
  const int64_t b = clock.NowMicros();
  EXPECT_GE(b, a);
}

TEST(FakeClockTest, AdvancesOnlyWhenTold) {
  FakeClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250);
}

TEST(FakeClockTest, AutoAdvanceTicksPerRead) {
  FakeClock clock;
  clock.set_auto_advance_micros(10);
  EXPECT_EQ(clock.NowMicros(), 0);   // reads, then advances
  EXPECT_EQ(clock.NowMicros(), 10);
  EXPECT_EQ(clock.NowMicros(), 20);
  clock.set_auto_advance_micros(0);
  EXPECT_EQ(clock.NowMicros(), 30);
  EXPECT_EQ(clock.NowMicros(), 30);
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMicros(), 0);
}

TEST(DeadlineTest, ExpiresExactlyAtBudget) {
  FakeClock clock;
  Deadline d = Deadline::After(clock, 100);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMicros(), 100);
  clock.AdvanceMicros(99);
  EXPECT_FALSE(d.Expired());
  clock.AdvanceMicros(1);
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingMicros(), 0);
}

TEST(DeadlineTest, DeterministicExpiryUnderAutoAdvance) {
  // With a 10us tick and a 35us budget, the 4th Expired() check is the first
  // to see time >= deadline (checks read t=10,20,30,40 after the After()
  // read consumed t=0), so exactly 3 checks pass: deterministic anywhere.
  FakeClock clock;
  clock.set_auto_advance_micros(10);
  Deadline d = Deadline::After(clock, 35);
  int checks = 0;
  while (!d.Expired()) ++checks;
  EXPECT_EQ(checks, 3);
}

TEST(FaultInjectorTest, FiresExactlyOnceAtArmedHit) {
  FaultInjector injector;
  injector.Arm("ppr", 3);
  EXPECT_FALSE(injector.Fire("ppr"));
  EXPECT_FALSE(injector.Fire("ppr"));
  EXPECT_TRUE(injector.Fire("ppr"));   // the armed 3rd hit
  EXPECT_FALSE(injector.Fire("ppr"));  // transient: later hits pass
  EXPECT_EQ(injector.hits("ppr"), 4);
  EXPECT_EQ(injector.faults_fired(), 1);
}

TEST(FaultInjectorTest, StagesAreIndependent) {
  FaultInjector injector;
  injector.Arm("subgraph", 1);
  EXPECT_FALSE(injector.Fire("forward"));
  EXPECT_TRUE(injector.Fire("subgraph"));
  EXPECT_EQ(injector.hits("forward"), 1);
  EXPECT_EQ(injector.faults_fired(), 1);
}

TEST(FaultInjectorTest, DisarmAllStopsFiring) {
  FaultInjector injector;
  injector.Arm("cache", 2);
  EXPECT_FALSE(injector.Fire("cache"));
  injector.DisarmAll();
  EXPECT_FALSE(injector.Fire("cache"));
  EXPECT_EQ(injector.faults_fired(), 0);
}

TEST(ExecContextTest, DefaultNeverCancels) {
  ExecContext ctx;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ctx.Check("anything").ok());
}

TEST(ExecContextTest, ReportsDeadlineExpiry) {
  FakeClock clock;
  ExecContext ctx(Deadline::After(clock, 50));
  EXPECT_TRUE(ctx.Check("stage").ok());
  clock.AdvanceMicros(50);
  const Status s = ctx.Check("stage");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("deadline"), std::string::npos);
  EXPECT_NE(s.message().find("stage"), std::string::npos);
}

TEST(ExecContextTest, ReportsInjectedFaultBeforeDeadline) {
  FakeClock clock;
  FaultInjector injector;
  injector.Arm("forward", 1);
  ExecContext ctx(Deadline::After(clock, 0), &injector);
  clock.AdvanceMicros(1);  // deadline already expired
  const Status s = ctx.Check("forward");
  EXPECT_FALSE(s.ok());
  // The injected fault wins the report even under an expired deadline.
  EXPECT_NE(s.message().find("injected fault"), std::string::npos);
}

}  // namespace
}  // namespace kucnet
