#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/ckg.h"
#include "graph/compgraph.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace kucnet {
namespace {

// Toy graph modeled on the paper's Figure 1: two users, five items (items 3
// and 4 are "new": no interactions), three KG entities.
//   users: u0, u1
//   items (kg ids 0-4): SherlockHolmes(0), IronMan(1), Titanic(2),
//                        SherlockHolmes2(3, new), Avengers(4, new)
//   entities (kg ids 5-7): RDJ(5), SciFi(6), GuyRitchie(7)
Ckg ToyCkg() {
  std::vector<std::array<int64_t, 2>> interactions = {
      {0, 0}, {0, 1}, {1, 0}, {1, 2}};
  std::vector<std::array<int64_t, 3>> kg = {
      {0, 0, 7},  // SherlockHolmes directed_by GuyRitchie
      {3, 0, 7},  // SherlockHolmes2 directed_by GuyRitchie
      {1, 1, 6},  // IronMan genre SciFi
      {4, 1, 6},  // Avengers genre SciFi
      {1, 0, 5},  // IronMan directed_by(ish) RDJ -- extra connectivity
      {4, 0, 5},  // Avengers ... RDJ
  };
  return Ckg::Build(/*num_users=*/2, /*num_items=*/5, /*num_kg_nodes=*/8,
                    /*num_kg_relations=*/2, interactions, kg);
}

// A reproducible random CKG for property tests.
Ckg RandomCkg(uint64_t seed, int64_t users = 6, int64_t items = 10,
              int64_t extra_entities = 6, int64_t rels = 3,
              int64_t num_inter = 18, int64_t num_kg = 25) {
  Rng rng(seed);
  std::vector<std::array<int64_t, 2>> inter;
  for (int64_t k = 0; k < num_inter; ++k) {
    inter.push_back({rng.UniformInt(users), rng.UniformInt(items)});
  }
  std::vector<std::array<int64_t, 3>> kg;
  const int64_t kg_nodes = items + extra_entities;
  for (int64_t k = 0; k < num_kg; ++k) {
    kg.push_back(
        {rng.UniformInt(kg_nodes), rng.UniformInt(rels), rng.UniformInt(kg_nodes)});
  }
  return Ckg::Build(users, items, kg_nodes, rels, inter, kg);
}

TEST(CkgTest, SizesAndIdLayout) {
  Ckg g = ToyCkg();
  EXPECT_EQ(g.num_users(), 2);
  EXPECT_EQ(g.num_items(), 5);
  EXPECT_EQ(g.num_kg_nodes(), 8);
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.num_kg_relations(), 2);
  EXPECT_EQ(g.num_base_relations(), 3);
  EXPECT_EQ(g.num_relations(), 6);
  EXPECT_EQ(g.self_loop_relation(), 6);
  EXPECT_TRUE(g.IsUser(0));
  EXPECT_TRUE(g.IsUser(1));
  EXPECT_FALSE(g.IsUser(2));
  EXPECT_TRUE(g.IsItem(g.ItemNode(0)));
  EXPECT_TRUE(g.IsItem(g.ItemNode(4)));
  EXPECT_FALSE(g.IsItem(g.KgNode(5)));
  EXPECT_EQ(g.ItemOfNode(g.ItemNode(3)), 3);
}

TEST(CkgTest, InverseRelationIsInvolution) {
  Ckg g = ToyCkg();
  for (int64_t r = 0; r < g.num_relations(); ++r) {
    EXPECT_EQ(g.InverseRelation(g.InverseRelation(r)), r);
    EXPECT_NE(g.InverseRelation(r), r);
  }
}

TEST(CkgTest, EveryEdgeHasInverse) {
  Ckg g = RandomCkg(7);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const auto rels = g.OutRelations(v);
    const auto dsts = g.OutNeighbors(v);
    for (size_t k = 0; k < dsts.size(); ++k) {
      // Find (dst, inv(rel), v).
      const auto back_rels = g.OutRelations(dsts[k]);
      const auto back_dsts = g.OutNeighbors(dsts[k]);
      bool found = false;
      for (size_t j = 0; j < back_dsts.size(); ++j) {
        if (back_dsts[j] == v && back_rels[j] == g.InverseRelation(rels[k])) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "edge " << v << " -" << rels[k] << "-> "
                         << dsts[k];
    }
  }
}

TEST(CkgTest, ItemsOfUser) {
  Ckg g = ToyCkg();
  auto items0 = g.ItemsOfUser(0);
  std::sort(items0.begin(), items0.end());
  EXPECT_EQ(items0, (std::vector<int64_t>{0, 1}));
  auto items1 = g.ItemsOfUser(1);
  std::sort(items1.begin(), items1.end());
  EXPECT_EQ(items1, (std::vector<int64_t>{0, 2}));
}

TEST(CkgTest, OutDegreeCountsBothDirections) {
  Ckg g = ToyCkg();
  // Item 0 (SherlockHolmes): inverse-interact edges from u0, u1 plus KG edge
  // to GuyRitchie = 3 out-edges.
  EXPECT_EQ(g.OutDegree(g.ItemNode(0)), 3);
  // GuyRitchie: inverse edges from items 0 and 3.
  EXPECT_EQ(g.OutDegree(g.KgNode(7)), 2);
}

TEST(CkgTest, AdjacencyIsSymmetricAndBinary) {
  Ckg g = RandomCkg(11);
  SparseMatrix a = g.AdjacencyMatrix();
  SparseMatrix at = a.Transposed();
  EXPECT_EQ(a.nnz(), at.nnz());
  // Symmetric: A and A^T have identical CSR contents.
  EXPECT_EQ(a.row_ptr(), at.row_ptr());
  EXPECT_EQ(a.col_idx(), at.col_idx());
  for (const real_t v : a.values()) EXPECT_EQ(v, 1.0);
}

TEST(CkgTest, DuplicateInputEdgesCollapse) {
  std::vector<std::array<int64_t, 2>> inter = {{0, 0}, {0, 0}, {0, 0}};
  Ckg g = Ckg::Build(1, 1, 1, 0, inter, {});
  EXPECT_EQ(g.num_edges(), 2);  // forward + inverse
}

TEST(BfsTest, DistancesOnToyGraph) {
  Ckg g = ToyCkg();
  const auto d = BfsDistances(g, g.UserNode(0), 10);
  EXPECT_EQ(d[g.UserNode(0)], 0);
  EXPECT_EQ(d[g.ItemNode(0)], 1);
  EXPECT_EQ(d[g.ItemNode(1)], 1);
  EXPECT_EQ(d[g.UserNode(1)], 2);   // via shared item 0
  EXPECT_EQ(d[g.ItemNode(2)], 3);   // u0 - i0 - u1 - i2
  EXPECT_EQ(d[g.KgNode(7)], 2);     // via item 0
  EXPECT_EQ(d[g.ItemNode(3)], 3);   // new item via GuyRitchie
  EXPECT_EQ(d[g.KgNode(6)], 2);     // via item 1
  EXPECT_EQ(d[g.ItemNode(4)], 3);   // new item via SciFi (or RDJ)
}

TEST(BfsTest, MaxDepthTruncates) {
  Ckg g = ToyCkg();
  const auto d = BfsDistances(g, g.UserNode(0), 2);
  EXPECT_EQ(d[g.UserNode(1)], 2);
  EXPECT_EQ(d[g.ItemNode(3)], -1);  // distance 3 > max_depth
}

TEST(UiSubgraphTest, CapturesCollaborativeAndAttributePaths) {
  Ckg g = ToyCkg();
  // Pair (u0, Avengers): new item connected through SciFi / RDJ (Fig. 2 right).
  UiSubgraph sg = ExtractUiSubgraph(g, g.UserNode(0), g.ItemNode(4), 3);
  std::set<int64_t> nodes(sg.nodes.begin(), sg.nodes.end());
  EXPECT_TRUE(nodes.count(g.UserNode(0)));
  EXPECT_TRUE(nodes.count(g.ItemNode(4)));
  EXPECT_TRUE(nodes.count(g.ItemNode(1)));  // IronMan bridges
  EXPECT_TRUE(nodes.count(g.KgNode(6)));    // SciFi
  EXPECT_TRUE(nodes.count(g.KgNode(5)));    // RDJ
  // Titanic (item 2) is distance 3 from u0 and >= 1 from Avengers: excluded.
  EXPECT_FALSE(nodes.count(g.ItemNode(2)));
  // All edges have both endpoints inside the node set.
  for (const Edge& e : sg.edges) {
    EXPECT_TRUE(nodes.count(e.src));
    EXPECT_TRUE(nodes.count(e.dst));
  }
}

TEST(UiSubgraphTest, DefinitionTwoMembership) {
  // Property: node v is in G_{u,i|L} iff d(u,v) + d(v,i) <= L.
  Ckg g = RandomCkg(13);
  const int32_t depth = 3;
  const int64_t u = g.UserNode(1);
  const int64_t i = g.ItemNode(2);
  UiSubgraph sg = ExtractUiSubgraph(g, u, i, depth);
  const auto du = BfsDistances(g, u, g.num_nodes());
  const auto di = BfsDistances(g, i, g.num_nodes());
  std::set<int64_t> nodes(sg.nodes.begin(), sg.nodes.end());
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const bool expected =
        du[v] >= 0 && di[v] >= 0 && du[v] + di[v] <= depth;
    EXPECT_EQ(nodes.count(v) > 0, expected) << "node " << v;
  }
}

TEST(CompGraphTest, LayersMatchRecursiveDefinition) {
  // Without pruning or self-loops, layer nodes must equal Eq. (10).
  Ckg g = ToyCkg();
  CompGraphOptions opts;
  opts.depth = 3;
  opts.self_loops = false;
  opts.max_edges_per_node = 0;
  CompGraphBuilder builder(&g, opts);
  UserCompGraph cg = builder.Build(g.UserNode(0));

  std::set<int64_t> frontier = {g.UserNode(0)};
  for (int32_t l = 0; l < 3; ++l) {
    std::set<int64_t> next;
    int64_t expected_edges = 0;
    for (const int64_t v : frontier) {
      for (const int64_t w : g.OutNeighbors(v)) next.insert(w);
      expected_edges += g.OutDegree(v);
    }
    std::set<int64_t> got(cg.layers[l].nodes.begin(),
                          cg.layers[l].nodes.end());
    EXPECT_EQ(got, next) << "layer " << l + 1;
    EXPECT_EQ(cg.layers[l].num_edges(), expected_edges) << "layer " << l + 1;
    frontier = next;
  }
}

TEST(CompGraphTest, SelfLoopsKeepNodesAlive) {
  Ckg g = ToyCkg();
  CompGraphOptions opts;
  opts.depth = 3;
  opts.self_loops = true;
  CompGraphBuilder builder(&g, opts);
  UserCompGraph cg = builder.Build(g.UserNode(0));
  // Layer l nodes are a superset of layer l-1 nodes.
  std::set<int64_t> prev = {g.UserNode(0)};
  for (const auto& layer : cg.layers) {
    std::set<int64_t> cur(layer.nodes.begin(), layer.nodes.end());
    for (const int64_t v : prev) EXPECT_TRUE(cur.count(v));
    prev = cur;
  }
  // The user itself stays reachable at the final layer.
  EXPECT_GE(cg.FinalIndexOf(g.UserNode(0)), 0);
}

TEST(CompGraphTest, Proposition1UiGraphsAreSubgraphs) {
  // Proposition 1: for every item i, every edge of C_{u,i|L} appears in the
  // (unpruned) user-centric computation graph at the same layer.
  for (uint64_t seed : {3u, 4u, 5u}) {
    Ckg g = RandomCkg(seed);
    CompGraphOptions opts;
    opts.depth = 3;
    opts.self_loops = true;
    CompGraphBuilder builder(&g, opts);
    const int64_t u = g.UserNode(0);
    UserCompGraph cg = builder.Build(u);

    // Materialize per-layer edge sets of the user-centric graph.
    std::vector<std::set<std::tuple<int64_t, int64_t, int64_t>>> uc(3);
    std::vector<int64_t> prev_nodes = {u};
    for (int l = 0; l < 3; ++l) {
      const auto& layer = cg.layers[l];
      for (int64_t e = 0; e < layer.num_edges(); ++e) {
        uc[l].insert({prev_nodes[layer.src_index[e]], layer.rel[e],
                      layer.nodes[layer.dst_index[e]]});
      }
      prev_nodes = layer.nodes;
    }

    for (int64_t item = 0; item < g.num_items(); ++item) {
      LayeredEdges ui =
          ExtractUiComputationGraph(g, u, g.ItemNode(item), 3);
      for (int l = 0; l < 3; ++l) {
        for (const Edge& e : ui.layers[l]) {
          EXPECT_TRUE(uc[l].count({e.src, e.rel, e.dst}))
              << "seed " << seed << " item " << item << " layer " << l
              << ": edge " << e.src << " -" << e.rel << "-> " << e.dst;
        }
      }
    }
  }
}

TEST(CompGraphTest, PruningRespectsCap) {
  Ckg g = RandomCkg(21, /*users=*/4, /*items=*/20, /*extra=*/10, /*rels=*/3,
                    /*inter=*/60, /*kg=*/80);
  CompGraphOptions opts;
  opts.depth = 3;
  opts.self_loops = false;
  opts.max_edges_per_node = 2;
  opts.prune = PruneMode::kRandom;
  CompGraphBuilder builder(&g, opts);
  Rng rng(1);
  UserCompGraph cg = builder.Build(g.UserNode(0), nullptr, &rng);
  for (const auto& layer : cg.layers) {
    // Each head contributes at most K edges.
    std::unordered_map<int64_t, int64_t> per_head;
    for (const int64_t s : layer.src_index) ++per_head[s];
    for (const auto& [head, count] : per_head) {
      EXPECT_LE(count, 2) << "head index " << head;
    }
  }
}

TEST(CompGraphTest, PprPruningKeepsHighestScoredTails) {
  Ckg g = ToyCkg();
  CompGraphOptions opts;
  opts.depth = 1;
  opts.self_loops = false;
  opts.max_edges_per_node = 1;
  opts.prune = PruneMode::kPpr;
  CompGraphBuilder builder(&g, opts);
  // Score item 1's node highest.
  NodeScoreFn score = [&](int64_t node) {
    return node == g.ItemNode(1) ? 1.0 : 0.0;
  };
  UserCompGraph cg = builder.Build(g.UserNode(0), &score);
  ASSERT_EQ(cg.layers[0].num_edges(), 1);
  EXPECT_EQ(cg.layers[0].nodes[cg.layers[0].dst_index[0]], g.ItemNode(1));
}

TEST(CompGraphTest, ExcludedPairsAreHidden) {
  Ckg g = ToyCkg();
  CompGraphOptions opts;
  opts.depth = 2;
  opts.self_loops = false;
  CompGraphBuilder builder(&g, opts);
  std::vector<ExcludedPair> excluded = {{g.UserNode(0), g.ItemNode(0)}};
  UserCompGraph cg = builder.Build(g.UserNode(0), nullptr, nullptr, excluded);
  // Layer 1 must not contain item 0 (only edge to it was excluded).
  for (const int64_t n : cg.layers[0].nodes) {
    EXPECT_NE(n, g.ItemNode(0));
  }
  // And the inverse edge (i0 -> u0) is hidden in deeper layers: no edge in
  // layer 2 may have src item0... item0 is unreachable entirely here, so just
  // check overall absence of the excluded edge.
  std::vector<int64_t> prev_nodes = {g.UserNode(0)};
  for (const auto& layer : cg.layers) {
    for (int64_t e = 0; e < layer.num_edges(); ++e) {
      const int64_t src = prev_nodes[layer.src_index[e]];
      const int64_t dst = layer.nodes[layer.dst_index[e]];
      const bool is_excluded_edge =
          (src == g.UserNode(0) && dst == g.ItemNode(0)) ||
          (src == g.ItemNode(0) && dst == g.UserNode(0));
      EXPECT_FALSE(is_excluded_edge && (layer.rel[e] == 0 || layer.rel[e] == 3));
    }
    prev_nodes = layer.nodes;
  }
}

TEST(CompGraphTest, FinalIndexLookup) {
  Ckg g = ToyCkg();
  CompGraphOptions opts;
  opts.depth = 3;
  CompGraphBuilder builder(&g, opts);
  UserCompGraph cg = builder.Build(g.UserNode(0));
  // Item 4 (new) is reachable at depth 3 via KG bridge.
  EXPECT_GE(cg.FinalIndexOf(g.ItemNode(4)), 0);
  // A made-up node id is not present.
  EXPECT_EQ(cg.FinalIndexOf(9999), -1);
  EXPECT_EQ(cg.FinalSize(), static_cast<int64_t>(cg.layers.back().nodes.size()));
  EXPECT_GT(cg.TotalEdges(), 0);
}

TEST(CompGraphTest, RandomPruneDeterministicGivenSeed) {
  Ckg g = RandomCkg(31, 4, 20, 10, 3, 60, 80);
  CompGraphOptions opts;
  opts.depth = 2;
  opts.max_edges_per_node = 3;
  opts.prune = PruneMode::kRandom;
  CompGraphBuilder builder(&g, opts);
  Rng rng1(9), rng2(9);
  UserCompGraph a = builder.Build(g.UserNode(1), nullptr, &rng1);
  UserCompGraph b = builder.Build(g.UserNode(1), nullptr, &rng2);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].nodes, b.layers[l].nodes);
    EXPECT_EQ(a.layers[l].rel, b.layers[l].rel);
    EXPECT_EQ(a.layers[l].src_index, b.layers[l].src_index);
  }
}

}  // namespace
}  // namespace kucnet
