// Concurrency-contract tests for the compute thread pool: per-call
// completion (no coupling between concurrent ParallelFor calls), inline
// execution when re-entered from a worker thread (no deadlock), clean
// shutdown with queued work, and the KUCNET_NUM_THREADS override.

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace kucnet {
namespace {

TEST(ThreadPoolTest, ConcurrentParallelForCallsFromExternalThreads) {
  ThreadPool pool(4);
  // Two external threads issue independent ParallelFor calls against the
  // same pool at once. Each call must wait for exactly its own work: both
  // sums must be complete when their issuing call returns.
  std::atomic<int64_t> sum_a{0}, sum_b{0};
  std::thread ta([&] {
    for (int rep = 0; rep < 20; ++rep) {
      ParallelFor(pool, 500, [&](int64_t i) { sum_a += i; });
    }
  });
  std::thread tb([&] {
    for (int rep = 0; rep < 20; ++rep) {
      ParallelFor(pool, 300, [&](int64_t i) { sum_b += i; });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sum_a.load(), 20 * (499 * 500 / 2));
  EXPECT_EQ(sum_b.load(), 20 * (299 * 300 / 2));
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  // Outer iterations run on pool workers; each issues another ParallelFor on
  // the same pool. With a pool-global wait this deadlocks once every worker
  // blocks inside an outer iteration; the per-call latch + inline-on-worker
  // rule must complete it.
  std::atomic<int64_t> count{0};
  ParallelFor(pool, 8, [&](int64_t) {
    ParallelFor(pool, 8, [&](int64_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.OnWorkerThread());
  std::atomic<int> on_this{0}, on_other{0};
  ParallelFor(pool, 4, [&](int64_t) {
    on_this += pool.OnWorkerThread() ? 1 : 0;
    on_other += other.OnWorkerThread() ? 1 : 0;
  });
  // n > 1 with 2 workers: every chunk is submitted, so all bodies run on
  // pool workers.
  EXPECT_EQ(on_this.load(), 4);
  EXPECT_EQ(on_other.load(), 0);  // never mistaken for another pool's worker
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // Destructor joins the workers; queued tasks must all have executed.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForRangesCoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  const int64_t n = 10007;  // prime: exercises the ragged final range
  std::vector<std::atomic<int>> hits(n);
  ParallelForRanges(pool, n, 64, [&](int64_t begin, int64_t end) {
    EXPECT_LE(end - begin, 64);
    for (int64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  const char* saved = std::getenv("KUCNET_NUM_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("KUCNET_NUM_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3);
  setenv("KUCNET_NUM_THREADS", "1", 1);
  EXPECT_EQ(DefaultThreadCount(), 1);
  setenv("KUCNET_NUM_THREADS", "99999", 1);
  EXPECT_EQ(DefaultThreadCount(), 256);  // clamped
  // Invalid values fall back to hardware concurrency (>= 1).
  setenv("KUCNET_NUM_THREADS", "0", 1);
  EXPECT_GE(DefaultThreadCount(), 1);
  setenv("KUCNET_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultThreadCount(), 1);

  if (saved != nullptr) {
    setenv("KUCNET_NUM_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("KUCNET_NUM_THREADS");
  }
}

TEST(ThreadPoolTest, SetGlobalPoolThreadsChangesEffectiveParallelism) {
  // With oversubscription forced on, the requested count sticks even when it
  // exceeds this machine's hardware threads.
  SetOversubscribeForTest(true);
  SetGlobalPoolThreads(3);
  EXPECT_EQ(EffectiveParallelism(), 3);
  EXPECT_EQ(GlobalPool().num_threads(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(1000, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
  SetGlobalPoolThreads(1);
  EXPECT_EQ(EffectiveParallelism(), 1);
  ClearOversubscribeForTest();
}

TEST(ThreadPoolTest, SetGlobalPoolThreadsClampsToHardwareConcurrency) {
  // Without the override, requests beyond hardware_concurrency() are capped:
  // extra workers on the same cores only add context-switch overhead and can
  // never change results (the concurrency contract fixes accumulation order
  // independently of thread count).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int cap = hw > 0 ? hw : 4;
  SetOversubscribeForTest(false);
  SetGlobalPoolThreads(cap + 7);
  EXPECT_EQ(GlobalPool().num_threads(), cap);
  EXPECT_EQ(EffectiveParallelism(), cap);
  // In-range requests are untouched.
  SetGlobalPoolThreads(1);
  EXPECT_EQ(EffectiveParallelism(), 1);
  std::atomic<int64_t> sum{0};
  ParallelFor(1000, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
  ClearOversubscribeForTest();
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  ParallelFor(pool, 4, [&](int64_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace kucnet
