// Behavioral contracts for the baseline family, beyond the smoke test:
// trainable models must actually learn (loss decreases and test recall beats
// chance on an easy dataset), and the new-item inductivity split must
// separate the embedding class from the KG-aggregating / structural class.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace kucnet {
namespace {

SyntheticConfig EasyConfig(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 50;
  cfg.num_items = 80;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 10;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 8;
  cfg.kg_noise = 0.05;
  cfg.entity_entity_edges_per_topic = 6;
  return cfg;
}

struct LearnEnv {
  LearnEnv()
      : dataset([] {
          Rng rng(17);
          return TraditionalSplit(GenerateSynthetic(EasyConfig(51)).raw, 0.25,
                                  rng);
        }()),
        ckg(dataset.BuildCkg()),
        ppr(PprTable::Compute(ckg)) {}
  Dataset dataset;
  Ckg ckg;
  PprTable ppr;
};

const LearnEnv& SharedLearnEnv() {
  static const LearnEnv* env = new LearnEnv;
  return *env;
}

class BaselineLearnsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineLearnsTest, LossDecreasesAndBeatsChance) {
  const LearnEnv& env = SharedLearnEnv();
  ModelContext ctx;
  ctx.dataset = &env.dataset;
  ctx.ckg = &env.ckg;
  ctx.ppr = &env.ppr;
  ctx.dim = 16;
  ctx.kucnet.hidden_dim = 16;
  ctx.kucnet.attention_dim = 3;
  ctx.kucnet.sample_k = 12;
  auto model = CreateModel(GetParam(), ctx);

  TrainOptions opts;
  opts.epochs = GetParam() == "KUCNet" ? 6 : 15;
  const TrainResult result = TrainModel(*model, env.dataset, opts);
  ASSERT_FALSE(result.curve.empty());
  // Mean loss over the last third is below the first epoch's loss.
  const double first = result.curve.front().loss;
  double late = 0.0;
  int late_count = 0;
  for (size_t e = result.curve.size() * 2 / 3; e < result.curve.size(); ++e) {
    late += result.curve[e].loss;
    ++late_count;
  }
  late /= late_count;
  EXPECT_LT(late, first) << GetParam() << ": no learning signal";

  // Chance recall@20 over 80 items is 0.25; demand a clear margin.
  EXPECT_GT(result.final_eval.recall, 0.3)
      << GetParam() << ": " << ToString(result.final_eval);
}

INSTANTIATE_TEST_SUITE_P(
    TrainableModels, BaselineLearnsTest,
    ::testing::Values("MF", "FM", "NFM", "CKE", "KGIN", "CKAN", "KGNN-LS",
                      "RippleNet", "R-GCN", "KGAT", "REDGNN", "KUCNet"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(InductivityContrastTest, NewItemSplitSeparatesModelClasses) {
  // A larger catalogue keeps the new-item chance floor low: 20 / (~110 new
  // items) ~ 0.18.
  SyntheticConfig cfg = EasyConfig(52);
  cfg.num_users = 80;
  cfg.num_items = 550;
  Rng rng(4);
  const Dataset dataset =
      NewItemSplit(GenerateSynthetic(cfg).raw, 0.2, rng);
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);
  ModelContext ctx;
  ctx.dataset = &dataset;
  ctx.ckg = &ckg;
  ctx.ppr = &ppr;
  ctx.dim = 16;
  ctx.kucnet.hidden_dim = 16;
  ctx.kucnet.attention_dim = 3;
  ctx.kucnet.sample_k = 60;  // new items need the larger K (paper Table VII)

  auto run = [&](const std::string& name, int epochs) {
    auto model = CreateModel(name, ctx);
    TrainOptions opts;
    opts.epochs = epochs;
    return TrainModel(*model, dataset, opts).final_eval.recall;
  };

  const double mf = run("MF", 15);
  const double kgin = run("KGIN", 15);
  const double ppr_rec = run("PPR", 0);
  const double kucnet = run("KUCNet", 8);

  // The paper's Table IV class separation: pure embeddings ~ chance; the
  // KG-aggregating and structural/inductive classes clearly above. (At this
  // tiny training size KUCNet's margin is modest; the bench harness shows
  // the full-size separation.)
  EXPECT_GT(kgin, 1.5 * mf) << "KGIN's KG aggregation must help on new items";
  EXPECT_GT(ppr_rec, 1.5 * mf);
  EXPECT_GT(kucnet, mf) << "KUCNet " << kucnet << " vs MF " << mf;
}

}  // namespace
}  // namespace kucnet
