// Contract tests for the SIMD-dispatched matmul kernels (tensor/simd.h,
// tensor/kernels.h):
//  - tile-boundary and K-panel-boundary shapes match the naive oracle to
//    0 ULP in deterministic mode,
//  - every dispatch level this machine can run (scalar / sse2 / avx2)
//    produces bitwise-identical deterministic results,
//  - deterministic mode is bitwise-unchanged from the pre-SIMD kernels this
//    PR replaced (embedded below as references), at 1/2/8 threads,
//  - fast mode stays within a mass-scaled error bound of the oracle,
//  - KUCNET_SIMD parsing.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "tensor/simd.h"
#include "testing/oracle.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kucnet {
namespace {

using testing::OracleMatMul;
using testing::OracleMatMulTransposedA;
using testing::OracleMatMulTransposedB;

// ---- Pre-SIMD reference kernels ---------------------------------------------
// Verbatim copies of the loops the register-tiled kernels replaced. They are
// the bitwise contract deterministic mode must keep: same per-element
// accumulation order, separate mul+add rounding. (The old zero-skip is kept
// too; with finite inputs it can only affect the sign of exact zeros, which
// Matrix::Equals treats as equal.)

Matrix ReferenceMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const real_t* arow = a.row(i);
    real_t* crow = c.row(i);
    for (int64_t kk = 0; kk < a.cols(); ++kk) {
      const real_t av = arow[kk];
      if (av == 0.0) continue;
      const real_t* brow = b.row(kk);
      for (int64_t j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix ReferenceMatMulTransposedA(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  for (int64_t i = 0; i < a.cols(); ++i) {
    real_t* crow = c.row(i);
    for (int64_t kk = 0; kk < a.rows(); ++kk) {
      const real_t av = a.row(kk)[i];
      if (av == 0.0) continue;
      const real_t* brow = b.row(kk);
      for (int64_t j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix ReferenceMatMulTransposedB(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const real_t* arow = a.row(i);
    real_t* crow = c.row(i);
    for (int64_t j = 0; j < b.rows(); ++j) {
      const real_t* brow = b.row(j);
      real_t dot = 0.0;
      for (int64_t kk = 0; kk < a.cols(); ++kk) dot += arow[kk] * brow[kk];
      crow[j] += dot;
    }
  }
  return c;
}

// -----------------------------------------------------------------------------

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const int detected = static_cast<int>(DetectedSimdLevel());
  if (detected >= static_cast<int>(SimdLevel::kSse2)) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (detected >= static_cast<int>(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

void ExpectBitwise(const Matrix& got, const Matrix& want, const char* what) {
  EXPECT_TRUE(got.Equals(want))
      << what << ": max abs diff " << got.MaxAbsDiff(want);
}

TEST(SimdKernelTest, TileBoundaryShapesMatchOracleExactly) {
  ScopedKernelMode det(KernelMode::kDeterministic);
  // The register tile is at most 6x8 (kMaxMr x kMaxNr covers every level),
  // so dims straddling {1, tile-1, tile, tile+1} exercise full tiles, edge
  // tiles, and single-lane remainders in every combination — at every
  // dispatch level this machine supports.
  const std::vector<int64_t> ms = {1, 5, 6, 7, 13};
  const std::vector<int64_t> ns = {1, 7, 8, 9, 17};
  const std::vector<int64_t> ks = {1, 2, 9};
  Rng rng(101);
  for (const SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel forced(level);
    for (const int64_t m : ms) {
      for (const int64_t n : ns) {
        for (const int64_t k : ks) {
          const Matrix a = Matrix::RandomNormal(m, k, 1.0, rng);
          const Matrix b = Matrix::RandomNormal(k, n, 1.0, rng);
          ExpectBitwise(MatMul(a, b), OracleMatMul(a, b), "MatMul");
          const Matrix at = Transpose(a);
          ExpectBitwise(MatMulTransposedA(at, b),
                        OracleMatMulTransposedA(at, b), "MatMulTransposedA");
          const Matrix bt = Transpose(b);
          ExpectBitwise(MatMulTransposedB(a, bt),
                        OracleMatMulTransposedB(a, bt), "MatMulTransposedB");
        }
      }
    }
  }
}

TEST(SimdKernelTest, KcPanelBoundaryMatchesOracleExactly) {
  ScopedKernelMode det(KernelMode::kDeterministic);
  // K straddling the 256-deep packing panel: the accumulation chain must
  // round-trip through C between panels without changing a single bit.
  Rng rng(103);
  for (const int64_t k : {255, 256, 257, 511, 513}) {
    const Matrix a = Matrix::RandomNormal(13, k, 1.0, rng);
    const Matrix b = Matrix::RandomNormal(k, 17, 1.0, rng);
    ExpectBitwise(MatMul(a, b), OracleMatMul(a, b), "MatMul@kc");
    const Matrix at = Transpose(a);
    ExpectBitwise(MatMulTransposedA(at, b), OracleMatMulTransposedA(at, b),
                  "MatMulTransposedA@kc");
    const Matrix bt = Transpose(b);
    ExpectBitwise(MatMulTransposedB(a, bt), OracleMatMulTransposedB(a, bt),
                  "MatMulTransposedB@kc");
  }
}

TEST(SimdKernelTest, DispatchLevelsAgreeBitwise) {
  ScopedKernelMode det(KernelMode::kDeterministic);
  // Deterministic mode: scalar and vector micro-kernels must produce the
  // same bits — vectorization only widens across output columns, it never
  // re-associates any element's chain.
  Rng rng(107);
  const Matrix a = Matrix::RandomNormal(129, 131, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(131, 67, 1.0, rng);
  Matrix scalar_mm, scalar_ta, scalar_tb;
  {
    ScopedSimdLevel forced(SimdLevel::kScalar);
    scalar_mm = MatMul(a, b);
    scalar_ta = MatMulTransposedA(a, MatMul(a, b));
    scalar_tb = MatMulTransposedB(a, Transpose(b));
  }
  for (const SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel forced(level);
    ExpectBitwise(MatMul(a, b), scalar_mm, SimdLevelName(level));
    ExpectBitwise(MatMulTransposedA(a, MatMul(a, b)), scalar_ta,
                  SimdLevelName(level));
    ExpectBitwise(MatMulTransposedB(a, Transpose(b)), scalar_tb,
                  SimdLevelName(level));
  }
}

TEST(SimdKernelTest, DeterministicModeMatchesPreSimdKernels) {
  ScopedKernelMode det(KernelMode::kDeterministic);
  // The regression that pins the "deterministic" contract: results are
  // bit-for-bit what the pre-SIMD kernels produced, at every thread count
  // (oversubscription forced so multi-worker pools are real on any machine)
  // and every dispatch level.
  Rng rng(109);
  const Matrix a = Matrix::RandomNormal(96, 200, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(200, 80, 1.0, rng);
  const Matrix odd_a = Matrix::RandomNormal(129, 67, 1.0, rng);
  const Matrix odd_b = Matrix::RandomNormal(67, 255, 1.0, rng);
  const Matrix want_mm = ReferenceMatMul(a, b);
  const Matrix want_ta = ReferenceMatMulTransposedA(a, MatMul(a, b));
  const Matrix want_tb = ReferenceMatMulTransposedB(a, Transpose(b));
  const Matrix want_odd = ReferenceMatMul(odd_a, odd_b);
  SetOversubscribeForTest(true);
  for (const int threads : {1, 2, 8}) {
    SetGlobalPoolThreads(threads);
    for (const SimdLevel level : AvailableLevels()) {
      ScopedSimdLevel forced(level);
      ExpectBitwise(MatMul(a, b), want_mm, "MatMul vs pre-SIMD");
      ExpectBitwise(MatMulTransposedA(a, MatMul(a, b)), want_ta,
                    "MatMulTransposedA vs pre-SIMD");
      ExpectBitwise(MatMulTransposedB(a, Transpose(b)), want_tb,
                    "MatMulTransposedB vs pre-SIMD");
      ExpectBitwise(MatMul(odd_a, odd_b), want_odd, "odd MatMul vs pre-SIMD");
    }
  }
  SetGlobalPoolThreads(1);
  ClearOversubscribeForTest();
}

TEST(SimdKernelTest, FastModeStaysMassBounded) {
  // Fast mode may re-round (FMA contraction) but never re-orders, so each
  // element must sit within a tiny multiple of its accumulated magnitude
  // sum_k |a_ik||b_kj| of the oracle value.
  Rng rng(113);
  const Matrix a = Matrix::RandomNormal(65, 130, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(130, 33, 1.0, rng);
  Matrix abs_a = a, abs_b = b;
  for (int64_t i = 0; i < abs_a.size(); ++i) {
    abs_a.data()[i] = std::abs(abs_a.data()[i]);
  }
  for (int64_t i = 0; i < abs_b.size(); ++i) {
    abs_b.data()[i] = std::abs(abs_b.data()[i]);
  }
  const Matrix mass = OracleMatMul(abs_a, abs_b);
  const Matrix want = OracleMatMul(a, b);
  ScopedKernelMode fast(KernelMode::kFast);
  for (const SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel forced(level);
    const Matrix got = MatMul(a, b);
    for (int64_t i = 0; i < got.rows(); ++i) {
      for (int64_t j = 0; j < got.cols(); ++j) {
        const double bound = 1e-12 * mass.at(i, j) + 1e-300;
        ASSERT_LE(std::abs(got.at(i, j) - want.at(i, j)), bound)
            << "(" << i << "," << j << ") at " << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, ParseSimdLevel) {
  SimdLevel level = SimdLevel::kAvx2;
  EXPECT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(ParseSimdLevel("sse2", &level));
  EXPECT_EQ(level, SimdLevel::kSse2);
  EXPECT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  level = SimdLevel::kSse2;
  EXPECT_FALSE(ParseSimdLevel("auto", &level));
  EXPECT_FALSE(ParseSimdLevel("", &level));
  EXPECT_FALSE(ParseSimdLevel("AVX2", &level));
  EXPECT_FALSE(ParseSimdLevel("avx512", &level));
  EXPECT_EQ(level, SimdLevel::kSse2);  // untouched on failure
}

TEST(SimdKernelTest, OverrideClampsToDetectedLevel) {
  // Forcing a level the CPU lacks clamps down instead of crashing; forcing
  // scalar always sticks.
  {
    ScopedSimdLevel forced(SimdLevel::kAvx2);
    EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
              static_cast<int>(DetectedSimdLevel()));
  }
  {
    ScopedSimdLevel forced(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
}

}  // namespace
}  // namespace kucnet
