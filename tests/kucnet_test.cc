#include <algorithm>

#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/kucnet.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/grad_check.h"
#include "train/trainer.h"

namespace kucnet {
namespace {

/// A tiny but learnable dataset: few topics, informative KG.
Dataset TinyDataset(SplitKind kind = SplitKind::kTraditional,
                    uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 10;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 8;
  cfg.kg_noise = 0.05;
  cfg.entity_entity_edges_per_topic = 6;
  Rng rng(seed);
  const SyntheticData synth = GenerateSynthetic(cfg);
  const RawData& raw = synth.raw;
  switch (kind) {
    case SplitKind::kTraditional:
      return TraditionalSplit(raw, 0.25, rng);
    case SplitKind::kNewItem:
      return NewItemSplit(raw, 0.2, rng);
    case SplitKind::kNewUser:
      return NewUserSplit(raw, 0.2, rng);
    case SplitKind::kTemporal:
      return TemporalSplit(raw, synth.arrival_order, 0.75);
  }
  return TraditionalSplit(raw, 0.25, rng);
}

struct Fixture {
  explicit Fixture(SplitKind kind = SplitKind::kTraditional,
                   KucnetOptions opts = KucnetOptions())
      : dataset(TinyDataset(kind)), ckg(dataset.BuildCkg()) {
    PprTableOptions ppr_opts;
    ppr_opts.epsilon = 1e-6;
    ppr = PprTable::Compute(ckg, ppr_opts);
    model = std::make_unique<Kucnet>(&dataset, &ckg, &ppr, opts);
  }
  Dataset dataset;
  Ckg ckg;
  PprTable ppr;
  std::unique_ptr<Kucnet> model;
};

KucnetOptions SmallOptions() {
  KucnetOptions opts;
  opts.hidden_dim = 12;
  opts.attention_dim = 3;
  opts.depth = 3;
  opts.sample_k = 10;
  opts.learning_rate = 1e-2;
  return opts;
}

TEST(KucnetTest, ScoreShapesAndUnreachableZero) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  const auto scores = f.model->ScoreItems(0);
  EXPECT_EQ(static_cast<int64_t>(scores.size()), f.dataset.num_items);
  // At least some item reachable and scored nonzero.
  int64_t nonzero = 0;
  for (const double s : scores) nonzero += (s != 0.0);
  EXPECT_GT(nonzero, 0);
  // Items not reachable in the final layer must score exactly 0.
  const KucnetForward fwd = f.model->Forward(0);
  for (int64_t i = 0; i < f.dataset.num_items; ++i) {
    if (fwd.graph.FinalIndexOf(f.ckg.ItemNode(i)) < 0) {
      EXPECT_EQ(scores[i], 0.0) << "item " << i;
    }
  }
}

TEST(KucnetTest, ForwardDeterministic) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  const auto a = f.model->ScoreItems(3);
  const auto b = f.model->ScoreItems(3);
  EXPECT_EQ(a, b);
}

TEST(KucnetTest, AttentionWeightsInUnitInterval) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  const KucnetForward fwd = f.model->Forward(1);
  ASSERT_FALSE(fwd.edges.empty());
  for (const AttributedEdge& e : fwd.edges) {
    EXPECT_GE(e.attention, 0.0);
    EXPECT_LE(e.attention, 1.0);
  }
}

TEST(KucnetTest, NoAttentionVariantHasUnitWeights) {
  KucnetOptions opts = SmallOptions();
  opts.use_attention = false;
  Fixture f(SplitKind::kTraditional, opts);
  EXPECT_EQ(f.model->name(), "KUCNet-w.o.-Attn");
  const KucnetForward fwd = f.model->Forward(1);
  for (const AttributedEdge& e : fwd.edges) {
    EXPECT_EQ(e.attention, 1.0);
  }
}

TEST(KucnetTest, VariantNames) {
  KucnetOptions opts = SmallOptions();
  {
    Fixture f(SplitKind::kTraditional, opts);
    EXPECT_EQ(f.model->name(), "KUCNet");
  }
  opts.prune = PruneMode::kRandom;
  {
    Fixture f(SplitKind::kTraditional, opts);
    EXPECT_EQ(f.model->name(), "KUCNet-random");
  }
  opts.prune = PruneMode::kNone;
  {
    Fixture f(SplitKind::kTraditional, opts);
    EXPECT_EQ(f.model->name(), "KUCNet-w.o.-PPR");
  }
}

TEST(KucnetTest, ParamCountMatchesParams) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  EXPECT_EQ(f.model->ParamCount(), TotalParamCount(f.model->Params()));
  // No node embeddings: parameter count is independent of graph size and
  // small (Fig. 5's claim).
  const int64_t d = f.model->options().hidden_dim;
  EXPECT_LT(f.model->ParamCount(),
            10 * d * d * f.model->options().depth + 10 * d);
}

TEST(KucnetTest, GradientsMatchFiniteDifferences) {
  KucnetOptions opts = SmallOptions();
  opts.hidden_dim = 6;
  opts.attention_dim = 2;
  opts.sample_k = 6;
  Fixture f(SplitKind::kTraditional, opts);
  // Pick a user with reachable positives.
  const auto train_items = f.dataset.TrainItemsByUser();
  int64_t user = -1;
  std::vector<int64_t> pos, neg;
  for (int64_t u = 0; u < f.dataset.num_users && user < 0; ++u) {
    if (train_items[u].size() < 2) continue;
    Tape probe;
    Var loss = f.model->BuildLoss(probe, u, {train_items[u][0]},
                                  {train_items[u][1]});
    if (loss.valid()) {
      user = u;
      pos = {train_items[u][0]};
      neg = {train_items[u][1]};
    }
  }
  ASSERT_GE(user, 0) << "no user with reachable pair found";
  auto fn = [&](Tape& tape) {
    Var loss = f.model->BuildLoss(tape, user, pos, neg);
    EXPECT_TRUE(loss.valid());
    return loss;
  };
  const auto result =
      CheckGradients(f.model->Params(), fn, 1e-5, 5e-4, /*max_entries=*/60);
  EXPECT_TRUE(result.ok) << "max_rel_err=" << result.max_rel_err;
}

TEST(KucnetTest, TrainingReducesLossAndBeatsChance) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  Rng rng(1);
  const double first_loss = f.model->TrainEpoch(rng);
  double last_loss = first_loss;
  for (int e = 0; e < 7; ++e) last_loss = f.model->TrainEpoch(rng);
  EXPECT_LT(last_loss, first_loss);

  const EvalResult eval = EvaluateRanking(*f.model, f.dataset);
  // Chance recall@20 is roughly 20/60; a trained model must beat it clearly.
  EXPECT_GT(eval.recall, 0.45) << ToString(eval);
}

TEST(KucnetTest, NewItemsAreScoredThroughTheKg) {
  // In the new-item split, test items have no interactions. KUCNet must
  // still reach and rank them via KG bridges.
  Fixture f(SplitKind::kNewItem, SmallOptions());
  Rng rng(2);
  for (int e = 0; e < 6; ++e) f.model->TrainEpoch(rng);
  const EvalResult eval = EvaluateRanking(*f.model, f.dataset);
  EXPECT_GT(eval.recall, 0.0) << ToString(eval);
  // Sanity: at least one new item is reachable for some user.
  const auto test_by_user = f.dataset.TestItemsByUser();
  bool reachable = false;
  for (const int64_t u : f.dataset.TestUsers()) {
    const KucnetForward fwd = f.model->Forward(u);
    for (const int64_t i : test_by_user[u]) {
      if (fwd.graph.FinalIndexOf(f.ckg.ItemNode(i)) >= 0) reachable = true;
    }
    if (reachable) break;
  }
  EXPECT_TRUE(reachable);
}

TEST(KucnetTest, ScorePairOnUiGraphAgreesOnReachability) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  const auto train_items = f.dataset.TrainItemsByUser();
  ASSERT_FALSE(train_items[0].empty());
  const auto [score, edges] = f.model->ScorePairOnUiGraph(0, train_items[0][0]);
  EXPECT_GT(edges, 0);
  // The per-pair graph is unpruned, so it contains at least as much
  // structure as any single pruned user graph's restriction to this item.
  const KucnetForward fwd = f.model->Forward(0);
  EXPECT_GE(edges, 0);
  (void)score;
  (void)fwd;
}

TEST(KucnetTest, PerPairGraphCostExceedsUserCentric) {
  // Fig. 6's premise: sum of per-pair edges across items >> user-centric
  // edges for the same user.
  KucnetOptions opts = SmallOptions();
  opts.prune = PruneMode::kNone;
  opts.sample_k = 0;
  Fixture f(SplitKind::kTraditional, opts);
  const KucnetForward fwd = f.model->Forward(0);
  const int64_t user_centric_edges = fwd.graph.TotalEdges();
  int64_t per_pair_total = 0;
  for (int64_t i = 0; i < f.dataset.num_items; ++i) {
    per_pair_total += f.model->ScorePairOnUiGraph(0, i).second;
  }
  EXPECT_GT(per_pair_total, user_centric_edges);
}

TEST(KucnetTest, TrainEpochSkipsUsersWithoutTrainData) {
  // In the new-user split, held-out users have no training interactions;
  // TrainEpoch must simply skip them (and never crash).
  Fixture f(SplitKind::kNewUser, SmallOptions());
  Rng rng(3);
  const double loss = f.model->TrainEpoch(rng);
  EXPECT_GE(loss, 0.0);
}

TEST(ExplainTest, PathsReachTheItemAndRespectThreshold) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  Rng rng(4);
  for (int e = 0; e < 3; ++e) f.model->TrainEpoch(rng);
  // Find a user and an item that is reachable.
  for (const int64_t u : f.dataset.TestUsers()) {
    const KucnetForward fwd = f.model->Forward(u);
    int64_t item = -1;
    for (int64_t i = 0; i < f.dataset.num_items; ++i) {
      if (fwd.graph.FinalIndexOf(f.ckg.ItemNode(i)) >= 0 &&
          fwd.item_scores[i] != 0.0) {
        item = i;
        break;
      }
    }
    if (item < 0) continue;
    const double threshold = 0.0;  // keep everything; structure checks below
    const auto paths = ExplainItem(fwd, f.ckg, item, threshold, 5);
    ASSERT_FALSE(paths.empty());
    for (const ExplainedPath& p : paths) {
      ASSERT_EQ(static_cast<int32_t>(p.hops.size()),
                f.model->options().depth);
      EXPECT_EQ(p.hops.front().src, f.ckg.UserNode(u));
      EXPECT_EQ(p.hops.back().dst, f.ckg.ItemNode(item));
      // Consecutive hops chain.
      for (size_t h = 1; h < p.hops.size(); ++h) {
        EXPECT_EQ(p.hops[h - 1].dst, p.hops[h].src);
      }
      for (const AttributedEdge& e : p.hops) {
        EXPECT_GE(e.attention, threshold);
      }
      EXPECT_FALSE(FormatPath(p, f.ckg).empty());
    }
    return;  // one user suffices
  }
  FAIL() << "no reachable item found for any test user";
}

TEST(ExplainTest, HighThresholdPrunesPaths) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  const KucnetForward fwd = f.model->Forward(0);
  int64_t item = -1;
  for (int64_t i = 0; i < f.dataset.num_items; ++i) {
    if (fwd.graph.FinalIndexOf(f.ckg.ItemNode(i)) >= 0) {
      item = i;
      break;
    }
  }
  ASSERT_GE(item, 0);
  const auto all = ExplainItem(fwd, f.ckg, item, 0.0, 1000);
  const auto strict = ExplainItem(fwd, f.ckg, item, 1.01, 1000);
  EXPECT_TRUE(strict.empty());
  EXPECT_GE(all.size(), strict.size());
}

TEST(ExplainTest, NameHelpers) {
  Fixture f(SplitKind::kTraditional, SmallOptions());
  const Ckg& g = f.ckg;
  EXPECT_EQ(RelationName(g, Ckg::kInteractRelation), "interact");
  EXPECT_EQ(RelationName(g, g.InverseRelation(Ckg::kInteractRelation)),
            "inv:interact");
  EXPECT_EQ(RelationName(g, 1), "kg:0");
  EXPECT_EQ(RelationName(g, g.self_loop_relation()), "self");
  EXPECT_EQ(NodeName(g, g.UserNode(2)), "user:2");
  EXPECT_EQ(NodeName(g, g.ItemNode(3)), "item:3");
  EXPECT_EQ(NodeName(g, g.KgNode(f.dataset.num_items + 1)),
            "entity:" + std::to_string(f.dataset.num_items + 1));
}

}  // namespace
}  // namespace kucnet
