#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baselines/mf.h"
#include "data/synthetic.h"
#include "tensor/serialize.h"
#include "train/negative_sampler.h"
#include "train/trainer.h"

namespace kucnet {
namespace {

Dataset SmallDataset(uint64_t seed = 21) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  Rng rng(seed);
  return TraditionalSplit(GenerateSynthetic(cfg).raw, 0.25, rng);
}

TEST(NegativeSamplerTest, NeverReturnsPositives) {
  Dataset d = SmallDataset();
  NegativeSampler sampler(d);
  Rng rng(1);
  const auto train = d.TrainItemsByUser();
  for (int64_t u = 0; u < d.num_users; ++u) {
    const std::set<int64_t> pos(train[u].begin(), train[u].end());
    for (int k = 0; k < 200; ++k) {
      const int64_t j = sampler.Sample(u, rng);
      EXPECT_GE(j, 0);
      EXPECT_LT(j, d.num_items);
      EXPECT_FALSE(pos.count(j)) << "user " << u << " got positive " << j;
    }
  }
}

TEST(NegativeSamplerTest, IsPositiveMatchesTrainSet) {
  Dataset d = SmallDataset();
  NegativeSampler sampler(d);
  for (const auto& [u, i] : d.train) {
    EXPECT_TRUE(sampler.IsPositive(u, i));
  }
  // A few random non-pairs.
  Rng rng(2);
  const auto train = d.TrainItemsByUser();
  for (int k = 0; k < 100; ++k) {
    const int64_t u = rng.UniformInt(d.num_users);
    const int64_t i = rng.UniformInt(d.num_items);
    const bool expected =
        std::binary_search(train[u].begin(), train[u].end(), i);
    EXPECT_EQ(sampler.IsPositive(u, i), expected);
  }
}

TEST(NegativeSamplerTest, CoversNegativeSpace) {
  Dataset d = SmallDataset();
  NegativeSampler sampler(d);
  Rng rng(3);
  std::set<int64_t> seen;
  for (int k = 0; k < 3000; ++k) seen.insert(sampler.Sample(0, rng));
  // Nearly all negatives of user 0 should eventually appear.
  const auto train = d.TrainItemsByUser();
  const int64_t negatives =
      d.num_items - static_cast<int64_t>(train[0].size());
  EXPECT_GT(static_cast<int64_t>(seen.size()), negatives * 9 / 10);
}

TEST(NegativeSamplerTest, DensePositiveUserSamplesInBoundedTime) {
  // A user who has interacted with all items but one: pure rejection
  // sampling would need ~num_items draws per sample; the bounded fallback
  // must find the single negative every time, immediately.
  Dataset d;
  d.num_users = 2;
  d.num_items = 2000;
  for (int64_t i = 0; i < d.num_items; ++i) {
    if (i != 777) d.train.push_back({0, i});
  }
  d.train.push_back({1, 0});  // a sparse user sharing the sampler
  NegativeSampler sampler(d);
  Rng rng(4);
  for (int k = 0; k < 500; ++k) {
    EXPECT_EQ(sampler.Sample(0, rng), 777);
  }
  // The sparse user still gets uniform negatives from the fast path.
  std::set<int64_t> seen;
  for (int k = 0; k < 200; ++k) seen.insert(sampler.Sample(1, rng));
  EXPECT_FALSE(seen.count(0));
  EXPECT_GT(seen.size(), 50u);
}

TEST(NegativeSamplerTest, DenseFallbackStaysUniform) {
  // 10 negatives among 500 items: every negative should be hit roughly
  // equally often even though most samples go through the scan fallback.
  Dataset d;
  d.num_users = 1;
  d.num_items = 500;
  std::set<int64_t> negatives;
  for (int64_t i = 0; i < d.num_items; ++i) {
    if (i % 50 == 7) {
      negatives.insert(i);
    } else {
      d.train.push_back({0, i});
    }
  }
  NegativeSampler sampler(d);
  Rng rng(5);
  std::map<int64_t, int64_t> counts;
  const int kSamples = 5000;
  for (int k = 0; k < kSamples; ++k) ++counts[sampler.Sample(0, rng)];
  ASSERT_EQ(counts.size(), negatives.size());
  for (const auto& [item, count] : counts) {
    EXPECT_TRUE(negatives.count(item));
    // Expected 500 each; a generous 3-sigma-ish band catches bias without
    // flaking.
    EXPECT_GT(count, 350);
    EXPECT_LT(count, 650);
  }
}

TEST(TrainerTest, CurveHasOneRecordPerEpoch) {
  Dataset d = SmallDataset();
  Mf model(&d, EmbeddingModelOptions{});
  TrainOptions opts;
  opts.epochs = 5;
  opts.eval_every = 2;
  const TrainResult result = TrainModel(model, d, opts);
  ASSERT_EQ(result.curve.size(), 5u);
  for (size_t e = 0; e < result.curve.size(); ++e) {
    EXPECT_EQ(result.curve[e].epoch, static_cast<int>(e) + 1);
    EXPECT_GE(result.curve[e].loss, 0.0);
  }
  // Epochs 2 and 4 evaluated; the final epoch always is.
  EXPECT_GE(result.curve[1].recall, 0.0);
  EXPECT_LT(result.curve[2].recall, 0.0);  // not evaluated
  EXPECT_GE(result.curve[4].recall, 0.0);
  EXPECT_EQ(result.final_eval.recall, result.curve[4].recall);
}

TEST(TrainerTest, CumulativeTimeMonotone) {
  Dataset d = SmallDataset();
  Mf model(&d, EmbeddingModelOptions{});
  TrainOptions opts;
  opts.epochs = 4;
  const TrainResult result = TrainModel(model, d, opts);
  double prev = 0.0;
  for (const EpochRecord& rec : result.curve) {
    EXPECT_GE(rec.seconds_elapsed, prev);
    prev = rec.seconds_elapsed;
  }
  EXPECT_GE(result.train_seconds, prev - 1e-9);
}

TEST(TrainerTest, ZeroEpochsEvaluatesHeuristically) {
  Dataset d = SmallDataset();
  Mf model(&d, EmbeddingModelOptions{});
  TrainOptions opts;
  opts.epochs = 0;
  const TrainResult result = TrainModel(model, d, opts);
  EXPECT_TRUE(result.curve.empty());
  EXPECT_GT(result.final_eval.num_users, 0);
}

TEST(TrainerTest, SeedReproducesRun) {
  Dataset d = SmallDataset();
  TrainOptions opts;
  opts.epochs = 3;
  opts.seed = 99;
  Mf a(&d, EmbeddingModelOptions{});
  Mf b(&d, EmbeddingModelOptions{});
  const TrainResult ra = TrainModel(a, d, opts);
  const TrainResult rb = TrainModel(b, d, opts);
  ASSERT_EQ(ra.curve.size(), rb.curve.size());
  for (size_t e = 0; e < ra.curve.size(); ++e) {
    EXPECT_DOUBLE_EQ(ra.curve[e].loss, rb.curve[e].loss);
  }
  EXPECT_DOUBLE_EQ(ra.final_eval.recall, rb.final_eval.recall);
}

TEST(CheckpointTest, RoundTripRestoresValues) {
  Rng rng(5);
  Parameter a("a", Matrix::RandomNormal(4, 6, 1.0, rng));
  Parameter b("b", Matrix::RandomNormal(2, 3, 1.0, rng));
  const Matrix a_saved = a.value();
  const Matrix b_saved = b.value();
  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  SaveParameters({&a, &b}, path);
  EXPECT_TRUE(IsCheckpoint(path));
  // Perturb, then restore.
  a.value().Scale(3.0);
  b.value().SetZero();
  LoadParameters({&a, &b}, path);
  EXPECT_TRUE(a.value().Equals(a_saved));
  EXPECT_TRUE(b.value().Equals(b_saved));
}

TEST(CheckpointDeathTest, MismatchedShapesAbort) {
  Rng rng(6);
  Parameter a("a", Matrix::RandomNormal(4, 6, 1.0, rng));
  const std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  SaveParameters({&a}, path);
  Parameter wrong_shape("a", Matrix::Zeros(4, 7));
  EXPECT_DEATH(LoadParameters({&wrong_shape}, path), "shape mismatch");
  Parameter wrong_name("z", Matrix::Zeros(4, 6));
  EXPECT_DEATH(LoadParameters({&wrong_name}, path), "name mismatch");
}

TEST(CheckpointTest, NonCheckpointFilesRejected) {
  const std::string path = ::testing::TempDir() + "/not_a_ckpt.txt";
  {
    std::ofstream out(path);
    out << "hello\n";
  }
  EXPECT_FALSE(IsCheckpoint(path));
  EXPECT_FALSE(IsCheckpoint("/definitely/missing/file"));
}

}  // namespace
}  // namespace kucnet
