#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "tensor/sparse.h"
#include "tensor/sparse_ops.h"
#include "util/rng.h"

namespace kucnet {
namespace {

SparseMatrix SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return SparseMatrix::FromEntries(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(SparseTest, FromEntriesBuildsCsr) {
  SparseMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.row_ptr()[0], 0);
  EXPECT_EQ(m.row_ptr()[1], 2);
  EXPECT_EQ(m.row_ptr()[2], 2);  // empty row
  EXPECT_EQ(m.row_ptr()[3], 4);
}

TEST(SparseTest, DuplicateEntriesSummed) {
  SparseMatrix m = SparseMatrix::FromEntries(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.values()[0], 3.5);
}

TEST(SparseTest, MatrixVectorMultiply) {
  SparseMatrix m = SmallMatrix();
  std::vector<real_t> x = {1.0, 2.0, 3.0};
  auto y = m.Multiply(x);
  EXPECT_EQ(y[0], 7.0);   // 1*1 + 2*3
  EXPECT_EQ(y[1], 0.0);
  EXPECT_EQ(y[2], 11.0);  // 3*1 + 4*2
}

TEST(SparseTest, DenseMultiplyMatchesManual) {
  SparseMatrix m = SmallMatrix();
  Matrix x(3, 2);
  x.at(0, 0) = 1;
  x.at(1, 0) = 2;
  x.at(2, 0) = 3;
  x.at(0, 1) = -1;
  x.at(1, 1) = -2;
  x.at(2, 1) = -3;
  Matrix y = m.Multiply(x);
  EXPECT_EQ(y.at(0, 0), 7.0);
  EXPECT_EQ(y.at(2, 1), -11.0);
  EXPECT_EQ(y.at(1, 0), 0.0);
}

TEST(SparseTest, TransposedRoundTrip) {
  SparseMatrix m = SmallMatrix();
  SparseMatrix tt = m.Transposed().Transposed();
  EXPECT_EQ(tt.rows(), m.rows());
  EXPECT_EQ(tt.nnz(), m.nnz());
  // A^T x computed two ways.
  std::vector<real_t> x = {1.0, 1.0, 1.0};
  auto y1 = m.Transposed().Multiply(x);
  EXPECT_EQ(y1[0], 4.0);  // col 0 of A: 1 + 3
  EXPECT_EQ(y1[1], 4.0);
  EXPECT_EQ(y1[2], 2.0);
}

TEST(SparseTest, RowNormalization) {
  SparseMatrix m = SmallMatrix().RowNormalized();
  std::vector<real_t> ones = {1.0, 1.0, 1.0};
  auto y = m.Multiply(ones);
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_EQ(y[1], 0.0);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

TEST(SparseTest, ColumnNormalization) {
  SparseMatrix m = SmallMatrix().ColumnNormalized();
  // Column sums of the normalized matrix must be 1 (where nonzero).
  SparseMatrix mt = m.Transposed();
  std::vector<real_t> ones = {1.0, 1.0, 1.0};
  auto col_sums = mt.Multiply(ones);
  EXPECT_NEAR(col_sums[0], 1.0, 1e-12);
  EXPECT_NEAR(col_sums[1], 1.0, 1e-12);
  EXPECT_NEAR(col_sums[2], 1.0, 1e-12);
}

TEST(SparseTest, SpMMForwardMatchesDense) {
  Rng rng(1);
  SparseMatrix a = SparseMatrix::FromEntries(
      4, 5,
      {{0, 1, 2.0}, {1, 0, -1.0}, {1, 4, 3.0}, {3, 2, 0.5}, {3, 3, 1.5}});
  Matrix x = Matrix::RandomNormal(5, 3, 1.0, rng);
  Matrix expected = a.Multiply(x);
  Tape tape;
  Var y = SpMM(tape, a, tape.Constant(x));
  EXPECT_LT(tape.value(y).MaxAbsDiff(expected), 1e-12);
}

TEST(SparseTest, SpMMGradient) {
  Rng rng(2);
  SparseMatrix a = SparseMatrix::FromEntries(
      4, 4, {{0, 1, 2.0}, {1, 0, -1.0}, {2, 2, 3.0}, {3, 1, 0.5}, {3, 3, 1.0}});
  Parameter x("x", Matrix::RandomNormal(4, 3, 1.0, rng));
  auto fn = [&](Tape& t) {
    Var y = SpMM(t, a, t.Param(&x));
    return t.Sum(t.Square(y));
  };
  auto r = CheckGradients({&x}, fn);
  EXPECT_TRUE(r.ok) << "rel_err=" << r.max_rel_err;
}

TEST(SparseTest, EmptyMatrix) {
  SparseMatrix m(0, 0);
  EXPECT_EQ(m.nnz(), 0);
  SparseMatrix m2(3, 3);
  std::vector<real_t> x = {1, 2, 3};
  auto y = m2.Multiply(x);
  EXPECT_EQ(y, std::vector<real_t>({0, 0, 0}));
}

}  // namespace
}  // namespace kucnet
