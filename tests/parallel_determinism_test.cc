// Bit-reproducibility of the threaded compute substrate: every kernel,
// gradient, optimizer step, and full training epoch must produce results
// that are bitwise identical at any thread count. Each test runs the same
// computation under 1-, 2-, and 8-worker global pools and compares exactly.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/kucnet.h"
#include "data/synthetic.h"
#include "tensor/adam.h"
#include "tensor/grad_check.h"
#include "tensor/matrix.h"
#include "tensor/parameter.h"
#include "tensor/tape.h"
#include "util/thread_pool.h"

namespace kucnet {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Runs `fn` under each thread count and checks all results are bitwise
/// equal to the 1-thread result. Oversubscription is forced on so the 2- and
/// 8-worker pools are real (not clamped away) even on single-core machines —
/// the whole point is to race genuinely concurrent workers.
template <typename Fn>
void ExpectThreadCountInvariant(const char* what, const Fn& fn) {
  SetOversubscribeForTest(true);
  SetGlobalPoolThreads(1);
  const Matrix reference = fn();
  for (const int threads : kThreadCounts) {
    SetGlobalPoolThreads(threads);
    const Matrix got = fn();
    EXPECT_TRUE(reference.Equals(got))
        << what << " differs at " << threads
        << " threads (max abs diff = " << reference.MaxAbsDiff(got) << ")";
  }
  SetGlobalPoolThreads(1);
  ClearOversubscribeForTest();
}

TEST(ParallelDeterminismTest, MatMulFamily) {
  Rng rng(3);
  // Sizes chosen to cross kMatMulParallelFlops (2^17) so the threaded path
  // actually engages.
  const Matrix a = Matrix::RandomNormal(96, 200, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(200, 80, 1.0, rng);
  ExpectThreadCountInvariant("MatMul", [&] { return MatMul(a, b); });

  const Matrix at = Matrix::RandomNormal(200, 96, 1.0, rng);
  ExpectThreadCountInvariant("MatMulTransposedA",
                             [&] { return MatMulTransposedA(at, b); });

  const Matrix bt = Matrix::RandomNormal(80, 200, 1.0, rng);
  ExpectThreadCountInvariant("MatMulTransposedB",
                             [&] { return MatMulTransposedB(a, bt); });
}

TEST(ParallelDeterminismTest, ElementwiseAndReductions) {
  Rng rng(5);
  const Matrix x = Matrix::RandomNormal(400, 300, 1.0, rng);  // > 2*kReduceChunk
  const Matrix y = Matrix::RandomNormal(400, 300, 1.0, rng);

  ExpectThreadCountInvariant("Add", [&] {
    Matrix z = x;
    z.Add(y);
    return z;
  });
  ExpectThreadCountInvariant("Axpy", [&] {
    Matrix z = x;
    z.Axpy(-0.37, y);
    return z;
  });
  ExpectThreadCountInvariant("Sum+SquaredNorm", [&] {
    Matrix out(1, 2);
    out.at(0, 0) = x.Sum();
    out.at(0, 1) = x.SquaredNorm();
    return out;
  });
}

TEST(ParallelDeterminismTest, SegmentSumAndGatherForwardBackward) {
  Rng rng(7);
  const int64_t edges = 60000, nodes = 500, dim = 8;  // work > 2^15
  Parameter table("table", Matrix::RandomNormal(nodes, dim, 1.0, rng));
  std::vector<int64_t> idx(edges), seg(edges);
  for (int64_t e = 0; e < edges; ++e) {
    idx[e] = rng.UniformInt(nodes);
    seg[e] = rng.UniformInt(nodes);
  }

  ExpectThreadCountInvariant("Gather/SegmentSum fwd+bwd", [&] {
    Tape tape;
    Var x = tape.Param(&table);
    Var gathered = tape.Gather(x, idx);
    Var aggregated = tape.SegmentSum(gathered, seg, nodes);
    Var loss = tape.Sum(tape.Square(aggregated));
    tape.Backward(loss);
    Matrix out = table.grad();  // scatter-accumulated dense gradient
    table.ZeroGrad();
    out.Add(tape.value(aggregated));  // and the forward value
    return out;
  });
}

TEST(ParallelDeterminismTest, AdamStep) {
  Rng rng(11);
  const int64_t rows = 2000, dim = 16;
  const Matrix init = Matrix::RandomNormal(rows, dim, 0.1, rng);
  const Matrix dense_grad = Matrix::RandomNormal(rows, dim, 0.01, rng);
  std::vector<int64_t> touched;
  Matrix sparse_grad(600, dim);
  for (int64_t k = 0; k < 600; ++k) {
    touched.push_back(rng.UniformInt(rows));
    for (int64_t j = 0; j < dim; ++j) sparse_grad.at(k, j) = rng.Normal();
  }

  ExpectThreadCountInvariant("Adam dense step", [&] {
    Parameter p("w", init);
    p.AccumulateDense(dense_grad);
    Adam adam{AdamOptions()};
    std::vector<Parameter*> params = {&p};
    adam.Step(params);
    return p.value();
  });

  ExpectThreadCountInvariant("Adam lazy (touched-rows) step", [&] {
    Parameter p("emb", init);
    p.AccumulateRows(touched, sparse_grad);
    Adam adam{AdamOptions()};
    std::vector<Parameter*> params = {&p};
    adam.Step(params);
    return p.value();
  });
}

TEST(ParallelDeterminismTest, GradCheckPassesAtEveryThreadCount) {
  Rng rng(13);
  const int64_t edges = 5000, nodes = 50, dim = 8;  // crosses kRowGrain work
  Parameter table("table", Matrix::RandomNormal(nodes, dim, 0.5, rng));
  Parameter w("w", Matrix::GlorotUniform(dim, dim, rng));
  std::vector<int64_t> idx(edges), seg(edges);
  for (int64_t e = 0; e < edges; ++e) {
    idx[e] = rng.UniformInt(nodes);
    seg[e] = rng.UniformInt(nodes);
  }
  const LossFn loss_fn = [&](Tape& tape) {
    Var x = tape.Param(&table);
    Var gathered = tape.Gather(x, idx);
    Var transformed = tape.MatMul(gathered, tape.Param(&w));
    Var aggregated = tape.SegmentSum(tape.Tanh(transformed), seg, nodes);
    return tape.Mean(tape.Square(aggregated));
  };
  std::vector<Parameter*> params = {&table, &w};
  for (const int threads : kThreadCounts) {
    SetGlobalPoolThreads(threads);
    const GradCheckResult result = CheckGradients(params, loss_fn);
    EXPECT_TRUE(result.ok) << "grad check failed at " << threads
                           << " threads: max_abs_err=" << result.max_abs_err
                           << " max_rel_err=" << result.max_rel_err;
  }
  SetGlobalPoolThreads(1);
}

/// Small learnable dataset for end-to-end training determinism.
Dataset TinyDataset() {
  SyntheticConfig cfg;
  cfg.seed = 42;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 6;
  Rng rng(42);
  return TraditionalSplit(GenerateSynthetic(cfg).raw, 0.25, rng);
}

TEST(ParallelDeterminismTest, TrainEpochThreadCountInvariant) {
  const Dataset dataset = TinyDataset();
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);
  KucnetOptions opts;
  opts.hidden_dim = 12;
  opts.attention_dim = 3;
  // Depth 3, not 2: items only reach the final layer (where the BPR pairs
  // are gathered) via user -> item -> entity -> item, so a depth-2 graph
  // trains on zero pairs and the test would compare untouched parameters.
  opts.depth = 3;
  opts.sample_k = 10;
  opts.dropout = 0.2;  // exercises the per-user dropout streams too

  std::vector<double> reference_losses;
  Matrix reference_readout;
  for (const int threads : kThreadCounts) {
    SetGlobalPoolThreads(threads);
    Kucnet model(&dataset, &ckg, &ppr, opts);
    Rng rng(opts.seed);
    std::vector<double> losses;
    for (int epoch = 0; epoch < 2; ++epoch) {
      losses.push_back(model.TrainEpoch(rng));
    }
    const Matrix readout = model.Params().back()->value();
    if (threads == 1) {
      reference_losses = losses;
      reference_readout = readout;
      continue;
    }
    for (size_t e = 0; e < losses.size(); ++e) {
      EXPECT_DOUBLE_EQ(reference_losses[e], losses[e])
          << "epoch " << e << " loss differs at " << threads << " threads";
    }
    EXPECT_TRUE(reference_readout.Equals(readout))
        << "trained readout differs at " << threads << " threads";
  }
  SetGlobalPoolThreads(1);
}

}  // namespace
}  // namespace kucnet
