#include <algorithm>
#include <filesystem>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace kucnet {
namespace {

RawData SmallRaw(uint64_t seed = 5) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  return GenerateSynthetic(cfg).raw;
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticConfig cfg;
  cfg.seed = 9;
  const auto a = GenerateSynthetic(cfg);
  const auto b = GenerateSynthetic(cfg);
  EXPECT_EQ(a.raw.interactions, b.raw.interactions);
  EXPECT_EQ(a.raw.kg, b.raw.kg);
  EXPECT_EQ(a.item_topic, b.item_topic);
}

TEST(SyntheticTest, RespectsConfiguredSizes) {
  SyntheticConfig cfg;
  cfg.num_users = 25;
  cfg.num_items = 50;
  cfg.num_topics = 5;
  cfg.entities_per_topic = 4;
  cfg.num_shared_entities = 7;
  cfg.interactions_per_user = 6;
  const auto data = GenerateSynthetic(cfg);
  EXPECT_EQ(data.raw.num_users, 25);
  EXPECT_EQ(data.raw.num_items, 50);
  EXPECT_EQ(data.raw.num_kg_nodes, 50 + 5 * 4 + 7);
  EXPECT_EQ(static_cast<int64_t>(data.item_topic.size()), 50);
  // Roughly interactions_per_user each (rejection may fall slightly short).
  EXPECT_GE(static_cast<int64_t>(data.raw.interactions.size()), 25 * 4);
  EXPECT_LE(static_cast<int64_t>(data.raw.interactions.size()), 25 * 6);
  // All ids in range, no duplicate pairs.
  std::set<std::array<int64_t, 2>> unique_pairs;
  for (const auto& [u, i] : data.raw.interactions) {
    EXPECT_GE(u, 0);
    EXPECT_LT(u, 25);
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 50);
    EXPECT_TRUE(unique_pairs.insert({u, i}).second);
  }
}

TEST(SyntheticTest, InteractionsConcentrateOnPreferredTopics) {
  SyntheticConfig cfg;
  cfg.seed = 3;
  cfg.topic_concentration = 0.9;
  const auto data = GenerateSynthetic(cfg);
  int64_t on_primary = 0;
  for (const auto& [u, i] : data.raw.interactions) {
    if (data.item_topic[i] == data.user_primary_topic[u]) ++on_primary;
  }
  const double frac =
      static_cast<double>(on_primary) / data.raw.interactions.size();
  // 0.9 * 0.75 ~ 0.68 expected on the primary topic alone; demand > chance.
  EXPECT_GT(frac, 3.0 / cfg.num_topics);
}

TEST(SyntheticTest, LowNoiseKgIsTopicAligned) {
  SyntheticConfig cfg;
  cfg.seed = 4;
  cfg.kg_noise = 0.0;
  cfg.entity_entity_edges_per_topic = 0;
  const auto data = GenerateSynthetic(cfg);
  for (const auto& [head, rel, tail] : data.raw.kg) {
    ASSERT_LT(head, cfg.num_items);  // item->entity only
    const int64_t entity_local = tail - cfg.num_items;
    EXPECT_EQ(data.entity_topic[entity_local], data.item_topic[head]);
  }
}

TEST(SyntheticTest, HighNoiseKgIsNot) {
  SyntheticConfig cfg;
  cfg.seed = 4;
  cfg.kg_noise = 1.0;
  cfg.entity_entity_edges_per_topic = 0;
  const auto data = GenerateSynthetic(cfg);
  int64_t aligned = 0;
  for (const auto& [head, rel, tail] : data.raw.kg) {
    const int64_t entity_local = tail - cfg.num_items;
    aligned += (data.entity_topic[entity_local] == data.item_topic[head]);
  }
  const double frac = static_cast<double>(aligned) / data.raw.kg.size();
  EXPECT_LT(frac, 0.35);  // ~1/num_topics plus shared entities
}

TEST(SyntheticTest, UserSideKgOnlyWhenConfigured) {
  auto without = GenerateSynthetic(SynthLastFmConfig());
  EXPECT_TRUE(without.raw.user_kg.empty());
  auto with = GenerateSynthetic(SynthDisGeNetConfig());
  EXPECT_FALSE(with.raw.user_kg.empty());
  for (const auto& [h, r, t] : with.raw.user_kg) {
    EXPECT_LT(h, with.raw.num_users);
    EXPECT_LT(t, with.raw.num_users);
    EXPECT_LT(r, with.raw.num_kg_relations);
  }
}

TEST(SyntheticTest, NamedConfigsResolve) {
  for (const char* name : {"synth-lastfm", "synth-amazon-book",
                           "synth-ifashion", "synth-disgenet"}) {
    SyntheticConfig cfg = SynthConfigByName(name);
    EXPECT_EQ(cfg.name, name);
    const auto data = GenerateSynthetic(cfg);
    EXPECT_GT(data.raw.interactions.size(), 0u);
    EXPECT_GT(data.raw.kg.size(), 0u);
  }
}

TEST(SyntheticDeathTest, UnknownConfigNameAborts) {
  EXPECT_DEATH(SynthConfigByName("nope"), "unknown synthetic config");
}

TEST(SplitTest, TraditionalTestItemsAppearInTraining) {
  RawData raw = SmallRaw();
  Rng rng(1);
  Dataset d = TraditionalSplit(raw, 0.2, rng);
  EXPECT_EQ(d.kind, SplitKind::kTraditional);
  std::unordered_set<int64_t> train_items;
  for (const auto& [u, i] : d.train) train_items.insert(i);
  for (const auto& [u, i] : d.test) {
    EXPECT_TRUE(train_items.count(i)) << "test item " << i;
  }
  EXPECT_GT(d.test.size(), 0u);
  EXPECT_GT(d.train.size(), d.test.size());
}

TEST(SplitTest, TraditionalNoOverlapBetweenTrainAndTestPairs) {
  RawData raw = SmallRaw();
  Rng rng(2);
  Dataset d = TraditionalSplit(raw, 0.25, rng);
  std::set<std::array<int64_t, 2>> train_set(d.train.begin(), d.train.end());
  for (const auto& pair : d.test) {
    EXPECT_FALSE(train_set.count(pair));
  }
}

TEST(SplitTest, NewItemTestItemsNeverTrained) {
  RawData raw = SmallRaw();
  Rng rng(3);
  Dataset d = NewItemSplit(raw, 0.2, rng);
  EXPECT_EQ(d.kind, SplitKind::kNewItem);
  std::unordered_set<int64_t> train_items, test_items;
  for (const auto& [u, i] : d.train) train_items.insert(i);
  for (const auto& [u, i] : d.test) test_items.insert(i);
  for (const int64_t i : test_items) {
    EXPECT_FALSE(train_items.count(i)) << "leaked item " << i;
  }
  // Split preserves every interaction.
  const std::set<std::array<int64_t, 2>> unique(raw.interactions.begin(),
                                                raw.interactions.end());
  EXPECT_EQ(d.train.size() + d.test.size(), unique.size());
}

TEST(SplitTest, NewUserTestUsersNeverTrained) {
  RawData raw = SmallRaw();
  Rng rng(4);
  Dataset d = NewUserSplit(raw, 0.2, rng);
  EXPECT_EQ(d.kind, SplitKind::kNewUser);
  std::unordered_set<int64_t> train_users, test_users;
  for (const auto& [u, i] : d.train) train_users.insert(u);
  for (const auto& [u, i] : d.test) test_users.insert(u);
  for (const int64_t u : test_users) {
    EXPECT_FALSE(train_users.count(u)) << "leaked user " << u;
  }
}

TEST(SplitTest, KgIsPreservedByAllSplits) {
  RawData raw = SmallRaw();
  Rng rng(5);
  for (const Dataset& d :
       {TraditionalSplit(raw, 0.2, rng), NewItemSplit(raw, 0.2, rng),
        NewUserSplit(raw, 0.2, rng)}) {
    EXPECT_EQ(d.kg, raw.kg);
    EXPECT_EQ(d.num_kg_nodes, raw.num_kg_nodes);
  }
}

TEST(DatasetTest, AccessorsConsistent) {
  RawData raw = SmallRaw();
  Rng rng(6);
  Dataset d = TraditionalSplit(raw, 0.2, rng);
  const auto train_by_user = d.TrainItemsByUser();
  const auto test_by_user = d.TestItemsByUser();
  int64_t train_total = 0, test_total = 0;
  for (const auto& v : train_by_user) train_total += v.size();
  for (const auto& v : test_by_user) test_total += v.size();
  EXPECT_EQ(train_total, static_cast<int64_t>(d.train.size()));
  EXPECT_EQ(test_total, static_cast<int64_t>(d.test.size()));
  const auto test_users = d.TestUsers();
  for (const int64_t u : test_users) {
    EXPECT_FALSE(test_by_user[u].empty());
  }
  EXPECT_FALSE(d.Summary().empty());
}

TEST(DatasetTest, BuildCkgShapes) {
  RawData raw = SmallRaw();
  Rng rng(7);
  Dataset d = TraditionalSplit(raw, 0.2, rng);
  Ckg g = d.BuildCkg();
  EXPECT_EQ(g.num_users(), d.num_users);
  EXPECT_EQ(g.num_items(), d.num_items);
  EXPECT_EQ(g.num_kg_nodes(), d.num_kg_nodes);
  // Every training interaction is an edge; test interactions are not.
  const auto items0 = g.ItemsOfUser(0);
  const std::set<int64_t> items0_set(items0.begin(), items0.end());
  const auto train_by_user = d.TrainItemsByUser();
  for (const int64_t i : train_by_user[0]) {
    EXPECT_TRUE(items0_set.count(i));
  }
  const auto test_by_user = d.TestItemsByUser();
  for (const int64_t i : test_by_user[0]) {
    EXPECT_FALSE(items0_set.count(i));
  }
}

TEST(SerializeTest, RoundTrip) {
  RawData raw = SmallRaw();
  Rng rng(8);
  Dataset d = NewItemSplit(raw, 0.2, rng);
  const std::string dir = ::testing::TempDir() + "/roundtrip_plain";
  std::filesystem::create_directories(dir);
  SaveDataset(d, dir);
  Dataset loaded = LoadDataset(dir);
  EXPECT_EQ(loaded.name, d.name);
  EXPECT_EQ(loaded.kind, d.kind);
  EXPECT_EQ(loaded.num_users, d.num_users);
  EXPECT_EQ(loaded.num_items, d.num_items);
  EXPECT_EQ(loaded.num_kg_nodes, d.num_kg_nodes);
  EXPECT_EQ(loaded.num_kg_relations, d.num_kg_relations);
  EXPECT_EQ(loaded.train, d.train);
  EXPECT_EQ(loaded.test, d.test);
  EXPECT_EQ(loaded.kg, d.kg);
  EXPECT_EQ(loaded.user_kg, d.user_kg);
}

TEST(SerializeTest, RoundTripWithUserKg) {
  auto data = GenerateSynthetic(SynthDisGeNetConfig());
  Rng rng(9);
  Dataset d = NewUserSplit(data.raw, 0.2, rng);
  ASSERT_FALSE(d.user_kg.empty());
  const std::string dir = ::testing::TempDir() + "/roundtrip_userkg";
  std::filesystem::create_directories(dir);
  SaveDataset(d, dir);
  Dataset loaded = LoadDataset(dir);
  EXPECT_EQ(loaded.user_kg, d.user_kg);
}

}  // namespace
}  // namespace kucnet
