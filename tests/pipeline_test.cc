#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/kucnet.h"
#include "data/synthetic.h"
#include "serve/rec_server.h"
#include "util/clock.h"
#include "util/fault.h"

/// \file
/// The staged dataflow pipeline (serve/pipeline.h) behind RecServer::Submit:
/// batched forwards must be bitwise identical to the synchronous path, the
/// linger window must be driven by the Clock seam (FakeClock-deterministic),
/// a deadline that expires mid-batch must degrade only its own request, and
/// a full batch queue must push back to admission instead of growing.

namespace kucnet {
namespace {

Dataset TinyDataset(uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 6;
  cfg.kg_noise = 0.05;
  cfg.entity_entity_edges_per_topic = 5;
  Rng rng(seed);
  const RawData raw = GenerateSynthetic(cfg).raw;
  return TraditionalSplit(raw, 0.25, rng);
}

KucnetOptions SmallModelOptions(uint64_t seed = 13) {
  KucnetOptions opts;
  opts.hidden_dim = 8;
  opts.attention_dim = 3;
  opts.depth = 3;
  opts.sample_k = 8;
  opts.seed = seed;
  return opts;
}

/// Dataset + CKG + PPR + model, shared by a pipelined server under test and
/// a zero-worker reference server that defines the ground-truth response.
struct PipelineFixture {
  PipelineFixture()
      : dataset(TinyDataset()),
        ckg(dataset.BuildCkg()),
        ppr(PprTable::Compute(ckg)),
        model(&dataset, &ckg, &ppr, SmallModelOptions()) {}

  RecServerOptions Options(const Clock* clock) const {
    RecServerOptions opts;
    opts.clock = clock;
    return opts;
  }

  std::unique_ptr<RecServer> MakeServer(RecServerOptions opts) {
    return std::make_unique<RecServer>(&model, &dataset, &ckg, &ppr,
                                       std::move(opts));
  }

  Dataset dataset;
  Ckg ckg;
  PprTable ppr;
  Kucnet model;
};

RecRequest UserRequest(int64_t user, int64_t deadline_micros = 0) {
  RecRequest request;
  request.user = user;
  request.deadline_micros = deadline_micros;
  return request;
}

/// Bitwise response equality: same items, bit-identical scores.
void ExpectBitwiseItems(const std::vector<ScoredItem>& got,
                        const std::vector<ScoredItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

// ---- Determinism -------------------------------------------------------------

// The tentpole invariant: coalescing concurrent requests into one
// TryForwardMany must not change a single bit of any response, at any worker
// count or batch size. The FakeClock stays frozen, so no deadline interferes
// and the only variable is the batching schedule itself.
TEST(ServePipelineTest, BatchedPipelineMatchesServeSyncBitwise) {
  PipelineFixture fx;
  constexpr int64_t kUsers = 12;

  FakeClock ref_clock;
  RecServerOptions ref_options = fx.Options(&ref_clock);
  ref_options.num_workers = 0;
  auto reference = fx.MakeServer(ref_options);
  std::vector<RecResponse> want;
  for (int64_t user = 0; user < kUsers; ++user) {
    want.push_back(reference->ServeSync(UserRequest(user)));
    ASSERT_EQ(want.back().tier, ServeTier::kFull);
  }

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    FakeClock clock;
    RecServerOptions options = fx.Options(&clock);
    options.num_workers = workers;
    options.batch_max_users = 4;
    options.queue_capacity = kUsers;
    auto server = fx.MakeServer(options);

    std::vector<std::future<RecResponse>> futures;
    for (int64_t user = 0; user < kUsers; ++user) {
      futures.push_back(server->Submit(UserRequest(user)));
    }
    for (int64_t user = 0; user < kUsers; ++user) {
      const RecResponse got = futures[user].get();
      ASSERT_EQ(got.status, ResponseStatus::kOk);
      ASSERT_EQ(got.tier, ServeTier::kFull);
      ExpectBitwiseItems(got.items, want[user].items);
    }
    server->Shutdown();
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.completed, kUsers);
    EXPECT_EQ(stats.batched_requests, kUsers);
    EXPECT_GT(stats.forward_batches, 0);
  }
}

// ---- Linger window -----------------------------------------------------------

// The linger window is measured on the Clock seam: with the FakeClock frozen
// a partial batch is held indefinitely, and advancing the clock past the
// window releases it — coalesced, not split.
TEST(ServePipelineTest, BatchLingerHoldsPartialBatchUntilClockAdvances) {
  PipelineFixture fx;
  FakeClock clock;
  std::vector<int64_t> batch_sizes;
  std::mutex sizes_mu;
  RecServerOptions options = fx.Options(&clock);
  options.num_workers = 2;
  options.batch_max_users = 4;
  options.batch_linger_micros = 1'000;
  options.batch_observer = [&](int64_t size) {
    std::lock_guard<std::mutex> lock(sizes_mu);
    batch_sizes.push_back(size);
  };
  auto server = fx.MakeServer(options);

  std::future<RecResponse> f0 = server->Submit(UserRequest(0));
  std::future<RecResponse> f1 = server->Submit(UserRequest(1));

  // Let both requests finish extraction and reach the batch stage (real
  // time; generous). The batch (2 of max 4) must then be *held*: the linger
  // window only moves with the FakeClock.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(f0.wait_for(std::chrono::seconds(0)), std::future_status::timeout);
  EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::timeout);
  {
    std::lock_guard<std::mutex> lock(sizes_mu);
    EXPECT_TRUE(batch_sizes.empty());
  }

  clock.AdvanceMicros(1'001);  // past the linger window
  EXPECT_EQ(f0.get().tier, ServeTier::kFull);
  EXPECT_EQ(f1.get().tier, ServeTier::kFull);
  server->Shutdown();

  {
    std::lock_guard<std::mutex> lock(sizes_mu);
    ASSERT_EQ(batch_sizes.size(), 1u);
    EXPECT_EQ(batch_sizes[0], 2);
  }
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.forward_batches, 1);
  EXPECT_EQ(stats.batched_requests, 2);
  EXPECT_EQ(stats.multi_user_batches, 1);
}

// ---- Per-request deadlines inside a batch ------------------------------------

// A deadline that expires after extraction but before the batched forward
// must degrade that request alone: its batchmate still gets the full tier,
// bit-identical to the synchronous answer.
TEST(ServePipelineTest, MidBatchDeadlineExpiryDegradesIndividually) {
  PipelineFixture fx;

  FakeClock ref_clock;
  RecServerOptions ref_options = fx.Options(&ref_clock);
  ref_options.num_workers = 0;
  auto reference = fx.MakeServer(ref_options);
  const RecResponse want_b = reference->ServeSync(UserRequest(8));
  ASSERT_EQ(want_b.tier, ServeTier::kFull);

  FakeClock clock;
  RecServerOptions options = fx.Options(&clock);
  options.num_workers = 2;
  options.batch_max_users = 2;      // the batch is exactly {A, B}
  options.batch_linger_micros = 1'000'000;  // frozen clock: wait for both
  // The batch is assembled, then — before the forward — time jumps past A's
  // deadline but stays well inside B's.
  options.batch_observer = [&clock](int64_t) { clock.AdvanceMicros(600); };
  auto server = fx.MakeServer(options);

  std::future<RecResponse> fa =
      server->Submit(UserRequest(7, /*deadline_micros=*/500));
  std::future<RecResponse> fb =
      server->Submit(UserRequest(8, /*deadline_micros=*/1'000'000));

  const RecResponse a = fa.get();
  const RecResponse b = fb.get();
  server->Shutdown();

  // A degraded at its own "forward" checkpoint: answered, below full, with
  // the deadline named.
  EXPECT_EQ(a.status, ResponseStatus::kOk);
  EXPECT_NE(a.tier, ServeTier::kFull);
  EXPECT_TRUE(a.degraded);
  EXPECT_FALSE(a.items.empty());
  EXPECT_NE(a.degrade_reason.find("deadline"), std::string::npos)
      << a.degrade_reason;

  // B is untouched by its batchmate's expiry.
  EXPECT_EQ(b.status, ResponseStatus::kOk);
  ASSERT_EQ(b.tier, ServeTier::kFull);
  ExpectBitwiseItems(b.items, want_b.items);

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.deadline_missed, 1);
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.multi_user_batches, 1);
  EXPECT_EQ(stats.completed, 2);
}

// ---- Predictive deadline guard -----------------------------------------------

// The batch stage tracks an EWMA of recent batch-forward cost and degrades a
// request *before* the forward when its remaining deadline budget cannot
// cover it — a forward that can only finish late is never started. The
// estimate is planted exactly by stalling one forward with a FakeClock
// advance, and the decay (a whole-batch preemption loses a quarter of the
// estimate, so a one-off slow batch cannot latch the full tier shut) is
// walked step by deterministic step.
TEST(ServePipelineTest, PredictiveDeadlineGuardPreemptsDoomedForwards) {
  PipelineFixture fx;
  FakeClock clock;
  FaultInjector faults;
  RecServerOptions options = fx.Options(&clock);
  options.num_workers = 1;
  options.batch_max_users = 1;
  options.default_deadline_micros = 1'000'000;
  options.fault = &faults;
  auto server = fx.MakeServer(options);

  // Plant the estimate: the first forward "takes" 50'000us on the Clock
  // seam (the stall advances the FakeClock mid-forward), so the EWMA — a
  // first sample — becomes exactly 50'000.
  faults.ArmStall("forward", 1, [&clock] { clock.AdvanceMicros(50'000); });
  const RecResponse slow = server->Submit(UserRequest(0)).get();
  ASSERT_EQ(slow.status, ResponseStatus::kOk);
  ASSERT_EQ(slow.tier, ServeTier::kFull);  // 50'000 < its 1s budget

  // Requests with a 10'000us budget are doomed while the estimate exceeds
  // it: each is preempted (answered promptly below full, reason named) and
  // each whole-batch preemption decays the estimate by a quarter —
  // 50'000 -> 37'500 -> 28'125 -> 21'094 -> 15'821 -> 11'866 -> 8'900 —
  // so exactly six preempt before the estimate drops under the budget.
  for (int i = 1; i <= 6; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    const RecResponse got =
        server->Submit(UserRequest(i, /*deadline_micros=*/10'000)).get();
    EXPECT_EQ(got.status, ResponseStatus::kOk);
    EXPECT_NE(got.tier, ServeTier::kFull);
    EXPECT_TRUE(got.degraded);
    EXPECT_FALSE(got.items.empty());
    EXPECT_NE(got.degrade_reason.find("predicted batch forward"),
              std::string::npos)
        << got.degrade_reason;
  }

  // The seventh identical request finds the decayed estimate (8'900) under
  // its budget and gets the full tier again: the guard self-heals.
  const RecResponse recovered =
      server->Submit(UserRequest(7, /*deadline_micros=*/10'000)).get();
  EXPECT_EQ(recovered.status, ResponseStatus::kOk);
  EXPECT_EQ(recovered.tier, ServeTier::kFull);
  server->Shutdown();

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.deadline_preempted, 6);
  EXPECT_EQ(stats.deadline_missed, 6);  // preemption counts as deadline-driven
  EXPECT_EQ(stats.forward_batches, 2);  // the stalled one and the recovery
  EXPECT_EQ(stats.fault_events, 0);     // a stall is a delay, not a fault
}

// ---- Back-pressure -----------------------------------------------------------

// When the batch stage stops consuming, the bounded ready queue fills, the
// extraction workers block, the admission queue fills behind them, and the
// next Submit sheds kOverloaded immediately — bounded memory end to end, no
// silent unbounded queue between stages.
TEST(ServePipelineTest, FullBatchQueuePushesBackToAdmissionShed) {
  PipelineFixture fx;
  FakeClock clock;
  std::promise<void> first_batch_entered;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> blocked_once{false};
  RecServerOptions options = fx.Options(&clock);
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.batch_max_users = 1;
  options.batch_queue_capacity = 1;
  options.batch_observer = [&](int64_t) {
    if (!blocked_once.exchange(true)) {
      first_batch_entered.set_value();
      release.wait();  // wedge the batch stage on its first batch
    }
  };
  auto server = fx.MakeServer(options);

  // Job 1 flows to the batch stage and wedges it.
  std::vector<std::future<RecResponse>> futures;
  futures.push_back(server->Submit(UserRequest(0)));
  first_batch_entered.get_future().wait();

  // Job 2 lands in the ready queue (capacity 1); job 3 blocks the extraction
  // worker trying to push behind it. Feed them one at a time, waiting for
  // the worker to pop each, so the admission queue is verifiably empty when
  // jobs 4-5 fill it.
  const auto wait_popped = [&](int64_t want_in_flight) {
    while (server->queue_depth() > 0 ||
           server->in_flight() < want_in_flight) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  futures.push_back(server->Submit(UserRequest(1)));
  wait_popped(2);
  futures.push_back(server->Submit(UserRequest(2)));
  wait_popped(3);
  futures.push_back(server->Submit(UserRequest(3)));
  futures.push_back(server->Submit(UserRequest(4)));
  ASSERT_EQ(server->queue_depth(), 2);
  ASSERT_EQ(server->in_flight(), 3);

  // The 6th request finds the admission queue full: shed, instantly.
  std::future<RecResponse> shed = server->Submit(UserRequest(5));
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(shed.get().status, ResponseStatus::kOverloaded);

  release_promise.set_value();
  for (auto& f : futures) {
    const RecResponse got = f.get();
    EXPECT_EQ(got.status, ResponseStatus::kOk);
    EXPECT_EQ(got.tier, ServeTier::kFull);
  }
  server->Shutdown();

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.admitted, 5);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.completed, 5);
}

// ---- Shutdown ----------------------------------------------------------------

// Shutdown with requests at every stage — queued, extracting, lingering in a
// partial batch — must answer all of them, then refuse new work.
TEST(ServePipelineTest, ShutdownDrainsLingeringBatch) {
  PipelineFixture fx;
  FakeClock clock;
  RecServerOptions options = fx.Options(&clock);
  options.num_workers = 2;
  options.batch_max_users = 8;
  options.batch_linger_micros = 1'000'000;  // frozen clock: linger never ends
  auto server = fx.MakeServer(options);

  std::vector<std::future<RecResponse>> futures;
  for (int64_t user = 0; user < 5; ++user) {
    futures.push_back(server->Submit(UserRequest(user)));
  }
  server->Shutdown();  // must flush the lingering partial batch

  for (auto& f : futures) {
    const RecResponse got = f.get();
    EXPECT_EQ(got.status, ResponseStatus::kOk);
    EXPECT_EQ(got.tier, ServeTier::kFull);
  }
  EXPECT_EQ(server->stats().completed, 5);
  EXPECT_TRUE(server->Quiesced());
  EXPECT_EQ(server->Submit(UserRequest(9)).get().status,
            ResponseStatus::kShutdown);
}

}  // namespace
}  // namespace kucnet
