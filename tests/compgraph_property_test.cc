// Property tests over the user-centric computation graph builder: for a
// sweep of (seed, depth, K, prune mode) configurations, every structural
// invariant the message-passing kernel relies on must hold.

#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/compgraph.h"
#include "ppr/ppr.h"

namespace kucnet {
namespace {

struct Config {
  uint64_t seed;
  int32_t depth;
  int64_t k;
  PruneMode prune;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const char* mode = info.param.prune == PruneMode::kNone     ? "none"
                     : info.param.prune == PruneMode::kPpr    ? "ppr"
                                                              : "random";
  return "seed" + std::to_string(info.param.seed) + "_L" +
         std::to_string(info.param.depth) + "_K" +
         std::to_string(info.param.k) + "_" + mode;
}

class CompGraphPropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  static Ckg MakeCkg(uint64_t seed) {
    SyntheticConfig cfg;
    cfg.seed = seed;
    cfg.num_users = 25;
    cfg.num_items = 40;
    cfg.num_topics = 4;
    cfg.interactions_per_user = 6;
    cfg.entities_per_topic = 4;
    cfg.num_shared_entities = 6;
    Rng rng(seed);
    return TraditionalSplit(GenerateSynthetic(cfg).raw, 0.2, rng).BuildCkg();
  }
};

TEST_P(CompGraphPropertyTest, StructuralInvariants) {
  const Config& param = GetParam();
  const Ckg ckg = MakeCkg(param.seed);
  const PprTable ppr = PprTable::Compute(ckg);

  CompGraphOptions opts;
  opts.depth = param.depth;
  opts.max_edges_per_node = param.k;
  opts.prune = param.prune;
  opts.self_loops = true;
  CompGraphBuilder builder(&ckg, opts);

  for (int64_t user = 0; user < 5; ++user) {
    const NodeScoreFn score = ppr.ScoreFn(user);
    Rng rng(param.seed * 31 + user);
    const UserCompGraph graph = builder.Build(
        ckg.UserNode(user), param.prune == PruneMode::kPpr ? &score : nullptr,
        param.prune == PruneMode::kRandom ? &rng : nullptr);

    ASSERT_EQ(static_cast<int32_t>(graph.layers.size()), param.depth);
    int64_t prev_size = 1;
    for (int32_t l = 0; l < param.depth; ++l) {
      const CompLayer& layer = graph.layers[l];
      const int64_t cur_size = static_cast<int64_t>(layer.nodes.size());
      ASSERT_EQ(layer.src_index.size(), layer.rel.size());
      ASSERT_EQ(layer.src_index.size(), layer.dst_index.size());
      // Index ranges.
      for (int64_t e = 0; e < layer.num_edges(); ++e) {
        EXPECT_GE(layer.src_index[e], 0);
        EXPECT_LT(layer.src_index[e], prev_size);
        EXPECT_GE(layer.dst_index[e], 0);
        EXPECT_LT(layer.dst_index[e], cur_size);
        EXPECT_GE(layer.rel[e], 0);
        EXPECT_LE(layer.rel[e], ckg.self_loop_relation());
      }
      // Node ids valid and unique.
      std::set<int64_t> unique_nodes(layer.nodes.begin(), layer.nodes.end());
      EXPECT_EQ(static_cast<int64_t>(unique_nodes.size()), cur_size);
      for (const int64_t n : layer.nodes) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, ckg.num_nodes());
      }
      // Every node in this layer is the destination of at least one edge.
      std::set<int64_t> with_in_edge(layer.dst_index.begin(),
                                     layer.dst_index.end());
      EXPECT_EQ(static_cast<int64_t>(with_in_edge.size()), cur_size);
      // Per-head cap (self-loops exempt).
      if (param.k > 0 && param.prune != PruneMode::kNone) {
        std::map<int64_t, int64_t> per_head;
        for (int64_t e = 0; e < layer.num_edges(); ++e) {
          if (layer.rel[e] == ckg.self_loop_relation()) continue;
          ++per_head[layer.src_index[e]];
        }
        for (const auto& [head, count] : per_head) {
          EXPECT_LE(count, param.k);
        }
      }
      prev_size = cur_size;
    }
    // final_index is a bijection onto the last layer.
    EXPECT_EQ(static_cast<int64_t>(graph.final_index.size()),
              graph.FinalSize());
    for (const auto& [node, idx] : graph.final_index) {
      EXPECT_EQ(graph.layers.back().nodes[idx], node);
    }
  }
}

TEST_P(CompGraphPropertyTest, PrunedIsSubgraphOfUnpruned) {
  const Config& param = GetParam();
  if (param.prune == PruneMode::kNone || param.k == 0) GTEST_SKIP();
  const Ckg ckg = MakeCkg(param.seed);
  const PprTable ppr = PprTable::Compute(ckg);

  CompGraphOptions unpruned_opts;
  unpruned_opts.depth = param.depth;
  unpruned_opts.self_loops = true;
  CompGraphBuilder unpruned_builder(&ckg, unpruned_opts);

  CompGraphOptions pruned_opts = unpruned_opts;
  pruned_opts.max_edges_per_node = param.k;
  pruned_opts.prune = param.prune;
  CompGraphBuilder pruned_builder(&ckg, pruned_opts);

  const int64_t user = ckg.UserNode(0);
  const NodeScoreFn score = ppr.ScoreFn(0);
  Rng rng(param.seed);
  const UserCompGraph full = unpruned_builder.Build(user);
  const UserCompGraph pruned = pruned_builder.Build(
      user, param.prune == PruneMode::kPpr ? &score : nullptr,
      param.prune == PruneMode::kRandom ? &rng : nullptr);

  EXPECT_LE(pruned.TotalEdges(), full.TotalEdges());
  // Every pruned-graph edge (in global-id form) exists in the full graph at
  // the same layer. Note: because pruning shrinks earlier layers, a node
  // may sit at a *later* dense layer in the pruned graph only if self-loops
  // carried it, which still exists in the full graph thanks to its own
  // self-loops — so the per-layer check is exact.
  std::vector<int64_t> full_prev = {user};
  std::vector<std::set<std::tuple<int64_t, int64_t, int64_t>>> full_edges(
      param.depth);
  for (int32_t l = 0; l < param.depth; ++l) {
    const CompLayer& layer = full.layers[l];
    for (int64_t e = 0; e < layer.num_edges(); ++e) {
      full_edges[l].insert({full_prev[layer.src_index[e]], layer.rel[e],
                            layer.nodes[layer.dst_index[e]]});
    }
    full_prev = layer.nodes;
  }
  std::vector<int64_t> pruned_prev = {user};
  for (int32_t l = 0; l < param.depth; ++l) {
    const CompLayer& layer = pruned.layers[l];
    for (int64_t e = 0; e < layer.num_edges(); ++e) {
      const auto edge = std::make_tuple(pruned_prev[layer.src_index[e]],
                                        layer.rel[e],
                                        layer.nodes[layer.dst_index[e]]);
      EXPECT_TRUE(full_edges[l].count(edge))
          << "layer " << l << " edge " << std::get<0>(edge) << " -"
          << std::get<1>(edge) << "-> " << std::get<2>(edge);
    }
    pruned_prev = layer.nodes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompGraphPropertyTest,
    ::testing::Values(Config{1, 2, 0, PruneMode::kNone},
                      Config{1, 3, 5, PruneMode::kPpr},
                      Config{1, 3, 5, PruneMode::kRandom},
                      Config{2, 3, 2, PruneMode::kPpr},
                      Config{2, 4, 10, PruneMode::kPpr},
                      Config{3, 2, 3, PruneMode::kRandom},
                      Config{3, 5, 4, PruneMode::kPpr},
                      Config{4, 3, 0, PruneMode::kNone}),
    ConfigName);

}  // namespace
}  // namespace kucnet
