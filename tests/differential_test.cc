#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "testing/fuzz.h"
#include "testing/oracle.h"

namespace kucnet {
namespace testing {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- ULP comparison ----------------------------------------------------------

TEST(UlpDistanceTest, EqualValuesAreZero) {
  EXPECT_EQ(UlpDistance(1.5, 1.5), 0u);
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0u);  // both zeros compare equal
  EXPECT_EQ(UlpDistance(kNan, kNan), 0u);
  EXPECT_EQ(UlpDistance(kInf, kInf), 0u);
  EXPECT_EQ(UlpDistance(-kInf, -kInf), 0u);
}

TEST(UlpDistanceTest, AdjacentDoublesAreOneUlp) {
  const double x = 1.0;
  const double up = std::nextafter(x, 2.0);
  const double down = std::nextafter(x, 0.0);
  EXPECT_EQ(UlpDistance(x, up), 1u);
  EXPECT_EQ(UlpDistance(x, down), 1u);
  // Across zero: smallest positive and negative denormals are 2 apart
  // (±denormal_min surround the two zeros on the ordered scale).
  const double denorm = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(UlpDistance(denorm, -denorm), 2u);
}

TEST(UlpDistanceTest, NanAgainstAnythingElseIsHuge) {
  EXPECT_EQ(UlpDistance(kNan, 1.0), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(UlpDistance(0.0, kNan), std::numeric_limits<uint64_t>::max());
}

TEST(UlpDistanceTest, SymmetricAndMonotone) {
  EXPECT_EQ(UlpDistance(1.0, 2.0), UlpDistance(2.0, 1.0));
  EXPECT_LT(UlpDistance(1.0, 1.0 + 1e-15), UlpDistance(1.0, 1.0 + 1e-12));
}

// ---- Oracle sanity -----------------------------------------------------------

TEST(OracleTest, TopNSinksNonFiniteAndBreaksTiesByIndex) {
  const std::vector<double> scores = {kNan, 2.0, kInf, 2.0, -kInf, 1.0};
  const auto top = OracleTopN(scores, 6);
  // Finite first (desc, ties by index), then all non-finite by index.
  EXPECT_EQ(top, (std::vector<int64_t>{1, 3, 5, 0, 2, 4}));
}

TEST(OracleTest, PprPushStrandsMassAtDanglingSource) {
  // One user, no edges: the source is dangling, so the push must absorb the
  // entire unit of restart mass immediately.
  Ckg g = Ckg::Build(1, 1, 1, 1, {}, {});
  const OraclePprResult r = OraclePprPush(g, 0, 0.15, 1e-6);
  ASSERT_EQ(r.estimate.size(), 1u);
  EXPECT_DOUBLE_EQ(r.estimate.at(0), 1.0);
  EXPECT_DOUBLE_EQ(r.total_mass, 1.0);
}

// ---- Fuzz sweeps -------------------------------------------------------------
//
// Moderate budgets here (the full 1000-case-per-subsystem sweep runs as the
// diff_fuzz_* ctest entries); a distinct base seed widens total coverage.
// On failure the report carries the failing seed and the repro command.

FuzzOptions QuickOptions(int64_t cases) {
  FuzzOptions options;
  options.seed = 7070707;
  options.cases = cases;
  return options;
}

TEST(DifferentialFuzzTest, TensorKernelsMatchOracles) {
  const FuzzReport report = FuzzTensor(QuickOptions(250));
  EXPECT_TRUE(report.ok()) << report.first_failure;
  EXPECT_EQ(report.cases_run, 250);
}

TEST(DifferentialFuzzTest, PprPushMatchesOracles) {
  const FuzzReport report = FuzzPpr(QuickOptions(250));
  EXPECT_TRUE(report.ok()) << report.first_failure;
}

TEST(DifferentialFuzzTest, RankingMatchesOracles) {
  const FuzzReport report = FuzzRanking(QuickOptions(400));
  EXPECT_TRUE(report.ok()) << report.first_failure;
}

TEST(DifferentialFuzzTest, ServingTiersMatchSequentialReplay) {
  const FuzzReport report = FuzzServe(QuickOptions(60));
  EXPECT_TRUE(report.ok()) << report.first_failure;
}

TEST(DifferentialFuzzTest, SubsystemDispatchAcceptsAllNames) {
  for (const char* name : {"tensor", "ppr", "ranking", "topn", "serve"}) {
    const FuzzReport report = FuzzSubsystem(name, QuickOptions(2));
    EXPECT_TRUE(report.ok()) << name << ": " << report.first_failure;
    EXPECT_EQ(report.cases_run, 2) << name;
  }
}

}  // namespace
}  // namespace testing
}  // namespace kucnet
