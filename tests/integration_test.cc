// Cross-module integration tests: the full pipeline a downstream user runs
// (generate -> save -> load -> build CKG -> PPR -> train KUCNet -> evaluate
// -> explain -> checkpoint), with invariants checked at every joint.

#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/explain.h"
#include "core/kucnet.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "train/trainer.h"

namespace kucnet {
namespace {

TEST(IntegrationTest, FullPipelineTraditional) {
  // 1. Generate and split.
  SyntheticConfig cfg;
  cfg.seed = 314;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_topics = 5;
  cfg.interactions_per_user = 10;
  Rng rng(1);
  const Dataset original = TraditionalSplit(GenerateSynthetic(cfg).raw, 0.2, rng);

  // 2. Round-trip through disk; everything downstream uses the loaded copy.
  const std::string dir = ::testing::TempDir() + "/integration_traditional";
  std::filesystem::create_directories(dir);
  SaveDataset(original, dir);
  const Dataset dataset = LoadDataset(dir);
  ASSERT_EQ(dataset.train, original.train);

  // 3. Graph + PPR.
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);
  ASSERT_EQ(ppr.num_users(), dataset.num_users);

  // 4. Train.
  KucnetOptions options;
  options.hidden_dim = 16;
  options.attention_dim = 3;
  options.sample_k = 15;
  Kucnet model(&dataset, &ckg, &ppr, options);
  TrainOptions train_options;
  train_options.epochs = 6;
  const TrainResult result = TrainModel(model, dataset, train_options);

  // 5. The trained model beats chance (chance recall@20 ~ 20/100).
  EXPECT_GT(result.final_eval.recall, 0.3)
      << ToString(result.final_eval);

  // 6. Explanations exist for a top recommendation and are structurally
  // valid paths from the user.
  const int64_t user = dataset.TestUsers().front();
  const KucnetForward forward = model.Forward(user);
  const auto top = TopNIndices(forward.item_scores, 1);
  ASSERT_FALSE(top.empty());
  const auto paths = ExplainItem(forward, ckg, top[0], 0.0, 5);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().hops.front().src, ckg.UserNode(user));
  EXPECT_EQ(paths.front().hops.back().dst, ckg.ItemNode(top[0]));

  // 7. Checkpoint round-trip: restored model scores identically.
  const std::string ckpt = dir + "/model.ckpt";
  model.SaveCheckpoint(ckpt);
  const auto scores_before = model.ScoreItems(user);
  Kucnet restored(&dataset, &ckg, &ppr, options);
  EXPECT_NE(restored.ScoreItems(user), scores_before);  // fresh init differs
  restored.LoadCheckpoint(ckpt);
  EXPECT_EQ(restored.ScoreItems(user), scores_before);
}

TEST(IntegrationTest, NewItemPipelineNoLeakage) {
  SyntheticConfig cfg;
  cfg.seed = 315;
  cfg.num_users = 60;
  cfg.num_items = 150;
  cfg.num_topics = 5;
  cfg.interactions_per_user = 10;
  Rng rng(2);
  const Dataset dataset = NewItemSplit(GenerateSynthetic(cfg).raw, 0.2, rng);
  const Ckg ckg = dataset.BuildCkg();

  // No new item may have an interact edge in the training CKG.
  std::vector<bool> is_new(dataset.num_items, true);
  for (const auto& [u, i] : dataset.train) is_new[i] = false;
  for (const auto& [u, i] : dataset.test) {
    ASSERT_TRUE(is_new[i]);
  }
  const int64_t interact_inv = ckg.InverseRelation(Ckg::kInteractRelation);
  for (int64_t item = 0; item < dataset.num_items; ++item) {
    if (!is_new[item]) continue;
    for (const int64_t rel : ckg.OutRelations(ckg.ItemNode(item))) {
      EXPECT_NE(rel, interact_inv) << "new item " << item
                                   << " has an interaction edge";
    }
  }

  // KUCNet and the heuristics all run and produce valid evaluations.
  const PprTable ppr = PprTable::Compute(ckg);
  ModelContext ctx;
  ctx.dataset = &dataset;
  ctx.ckg = &ckg;
  ctx.ppr = &ppr;
  ctx.dim = 16;
  ctx.kucnet.hidden_dim = 16;
  ctx.kucnet.attention_dim = 3;
  ctx.kucnet.sample_k = 20;
  for (const char* name : {"PPR", "PathSim", "KUCNet"}) {
    auto model = CreateModel(name, ctx);
    TrainOptions opts;
    opts.epochs = name == std::string("KUCNet") ? 5 : 0;
    const TrainResult result = TrainModel(*model, dataset, opts);
    EXPECT_GE(result.final_eval.recall, 0.0) << name;
    EXPECT_LE(result.final_eval.recall, 1.0) << name;
    EXPECT_GT(result.final_eval.num_users, 0) << name;
  }
}

TEST(IntegrationTest, NewUserPipelineUsesUserSideKg) {
  const SyntheticConfig cfg = [] {
    SyntheticConfig c = SynthDisGeNetConfig();
    c.num_users = 80;
    c.num_items = 150;
    c.interactions_per_user = 8;
    return c;
  }();
  Rng rng(3);
  const Dataset dataset = NewUserSplit(GenerateSynthetic(cfg).raw, 0.2, rng);
  const Ckg ckg = dataset.BuildCkg();

  // New users have no interact edges but keep user-user KG edges.
  std::vector<bool> trained_user(dataset.num_users, false);
  for (const auto& [u, i] : dataset.train) trained_user[u] = true;
  int64_t checked = 0;
  for (const int64_t u : dataset.TestUsers()) {
    ASSERT_FALSE(trained_user[u]);
    bool has_interact = false;
    bool has_user_edge = false;
    const auto rels = ckg.OutRelations(ckg.UserNode(u));
    const auto dsts = ckg.OutNeighbors(ckg.UserNode(u));
    for (size_t k = 0; k < rels.size(); ++k) {
      if (rels[k] == Ckg::kInteractRelation) has_interact = true;
      if (ckg.IsUser(dsts[k])) has_user_edge = true;
    }
    EXPECT_FALSE(has_interact) << "new user " << u;
    if (has_user_edge) ++checked;
  }
  EXPECT_GT(checked, 0) << "no held-out user kept disease-disease edges";

  // KUCNet reaches items for a new user through those edges.
  const PprTable ppr = PprTable::Compute(ckg);
  KucnetOptions options;
  options.hidden_dim = 16;
  options.attention_dim = 3;
  options.sample_k = 30;
  Kucnet model(&dataset, &ckg, &ppr, options);
  Rng train_rng(4);
  for (int e = 0; e < 5; ++e) model.TrainEpoch(train_rng);
  const EvalResult eval = EvaluateRanking(model, dataset);
  EXPECT_GT(eval.recall, 0.0) << ToString(eval);
}

}  // namespace
}  // namespace kucnet
