#include <cmath>

#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace kucnet {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      real_t s = 0.0;
      for (int64_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(k, j);
      c.at(i, j) = s;
    }
  }
  return c;
}

TEST(MatrixTest, ConstructorsAndAccessors) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.at(2, 3), 0.0);
  m.at(1, 2) = 5.5;
  EXPECT_EQ(m.at(1, 2), 5.5);
  EXPECT_EQ(m.row(1)[2], 5.5);

  Matrix empty;
  EXPECT_TRUE(empty.empty());

  Matrix filled = Matrix::Filled(2, 2, 3.0);
  EXPECT_EQ(filled.Sum(), 12.0);
}

TEST(MatrixTest, AddAxpyScale) {
  Matrix a = Matrix::Filled(2, 3, 1.0);
  Matrix b = Matrix::Filled(2, 3, 2.0);
  a.Add(b);
  EXPECT_EQ(a.at(0, 0), 3.0);
  a.Axpy(0.5, b);
  EXPECT_EQ(a.at(1, 2), 4.0);
  a.Scale(2.0);
  EXPECT_EQ(a.at(0, 1), 8.0);
  EXPECT_EQ(a.SquaredNorm(), 6 * 64.0);
}

TEST(MatrixTest, MatMulMatchesNaive) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = 1 + rng.UniformInt(8);
    const int64_t k = 1 + rng.UniformInt(8);
    const int64_t m = 1 + rng.UniformInt(8);
    Matrix a = Matrix::RandomNormal(n, k, 1.0, rng);
    Matrix b = Matrix::RandomNormal(k, m, 1.0, rng);
    EXPECT_LT(MatMul(a, b).MaxAbsDiff(NaiveMatMul(a, b)), 1e-12);
  }
}

TEST(MatrixTest, TransposedVariantsMatchExplicit) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(5, 7, 1.0, rng);
  Matrix b = Matrix::RandomNormal(5, 4, 1.0, rng);
  // A^T * B
  EXPECT_LT(MatMulTransposedA(a, b).MaxAbsDiff(MatMul(Transpose(a), b)),
            1e-12);
  Matrix c = Matrix::RandomNormal(3, 7, 1.0, rng);
  // A * C^T where A: 5x7, C: 3x7
  EXPECT_LT(MatMulTransposedB(a, c).MaxAbsDiff(MatMul(a, Transpose(c))),
            1e-12);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(4, 6, 1.0, rng);
  EXPECT_TRUE(Transpose(Transpose(a)).Equals(a));
}

TEST(MatrixTest, GlorotUniformBounds) {
  Rng rng(4);
  const int64_t r = 30, c = 20;
  Matrix m = Matrix::GlorotUniform(r, c, rng);
  const real_t bound = std::sqrt(6.0 / (r + c));
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound);
  }
  // Not degenerate.
  EXPECT_GT(m.SquaredNorm(), 0.0);
}

TEST(MatrixTest, RandomNormalStddev) {
  Rng rng(5);
  Matrix m = Matrix::RandomNormal(100, 100, 0.5, rng);
  const real_t var = m.SquaredNorm() / m.size();
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = Matrix::Filled(2, 2, 1.0);
  Matrix b = Matrix::Filled(2, 2, 1.0);
  b.at(1, 1) = 1.5;
  EXPECT_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_FALSE(a.Equals(b));
  b.at(1, 1) = 1.0;
  EXPECT_TRUE(a.Equals(b));
}

TEST(MatrixTest, MatMulShapes) {
  Matrix a(2, 3), b(3, 5);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 5);
}

}  // namespace
}  // namespace kucnet
