// Crash safety of the checkpoint formats: v2 integrity footer, atomic
// saves under a fault-injection sweep (kill the save at every Nth IO op and
// the previous checkpoint must survive), legacy v1 compatibility, and exact
// round-trips of optimizer (Adam) and RNG state.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tensor/adam.h"
#include "tensor/matrix.h"
#include "tensor/parameter.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"
#include "util/fs.h"
#include "util/rng.h"

namespace kucnet {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Two small named parameters with reproducible values.
std::vector<Parameter> MakeParams(uint64_t seed) {
  Rng rng(seed);
  std::vector<Parameter> params;
  params.reserve(2);
  params.emplace_back("emb", Matrix::RandomNormal(8, 4, 1.0, rng));
  params.emplace_back("readout", Matrix::RandomNormal(4, 1, 1.0, rng));
  return params;
}

std::vector<Parameter*> Ptrs(std::vector<Parameter>& params) {
  std::vector<Parameter*> out;
  for (Parameter& p : params) out.push_back(&p);
  return out;
}

TEST(CheckpointV2Test, TryRoundTrip) {
  auto params = MakeParams(1);
  const Matrix emb_saved = params[0].value();
  const std::string path = TempPath("v2_roundtrip.kuc");
  ASSERT_TRUE(TrySaveParameters(Ptrs(params), path).ok());
  EXPECT_TRUE(IsCheckpoint(path));
  params[0].value().SetZero();
  ASSERT_TRUE(TryLoadParameters(Ptrs(params), path).ok());
  EXPECT_TRUE(params[0].value().Equals(emb_saved));
}

TEST(CheckpointV2Test, IsCheckpointRejectsTornFile) {
  auto params = MakeParams(2);
  const std::string path = TempPath("v2_torn.kuc");
  ASSERT_TRUE(TrySaveParameters(Ptrs(params), path).ok());

  std::string bytes;
  ASSERT_TRUE(DefaultFileSystem().ReadFile(path, &bytes).ok());
  // Truncate: the footer (or part of the payload) is gone.
  const std::string torn_path = TempPath("v2_torn_cut.kuc");
  ASSERT_TRUE(
      DefaultFileSystem().WriteFile(torn_path, bytes.substr(0, bytes.size() / 2))
          .ok());
  EXPECT_FALSE(IsCheckpoint(torn_path));
  EXPECT_FALSE(TryLoadParameters(Ptrs(params), torn_path).ok());

  // Flip one payload byte: the magic survives but the checksum must not.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  const std::string flip_path = TempPath("v2_flipped.kuc");
  ASSERT_TRUE(DefaultFileSystem().WriteFile(flip_path, flipped).ok());
  EXPECT_FALSE(IsCheckpoint(flip_path));
  const Status st = TryLoadParameters(Ptrs(params), flip_path);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st.message();
}

TEST(CheckpointV2Test, TornReadDetectedByChecksumNotAbort) {
  auto params = MakeParams(3);
  const std::string path = TempPath("v2_torn_read.kuc");
  ASSERT_TRUE(TrySaveParameters(Ptrs(params), path).ok());
  FaultInjectingFileSystem faulty(&DefaultFileSystem());
  faulty.FailFrom(1, FaultMode::kTear);  // reader silently sees half the file
  const Status st = TryLoadParameters(Ptrs(params), path, &faulty);
  EXPECT_FALSE(st.ok());
}

TEST(CheckpointV2Test, LegacyV1StillLoads) {
  auto params = MakeParams(4);
  const Matrix emb_saved = params[0].value();
  const Matrix readout_saved = params[1].value();
  const std::string path = TempPath("v1_legacy.bin");
  {
    // Write the pre-v2 format by hand: text header + raw doubles.
    std::ofstream out(path, std::ios::binary);
    out << "KUCNET_CKPT_V1\n" << 2 << '\n';
    for (const Parameter* p : Ptrs(params)) {
      out << p->name() << ' ' << p->rows() << ' ' << p->cols() << '\n';
    }
    for (const Parameter* p : Ptrs(params)) {
      out.write(reinterpret_cast<const char*>(p->value().data()),
                static_cast<std::streamsize>(p->value().size() *
                                             sizeof(real_t)));
    }
  }
  EXPECT_TRUE(IsCheckpoint(path));
  params[0].value().SetZero();
  params[1].value().SetZero();
  ASSERT_TRUE(TryLoadParameters(Ptrs(params), path).ok());
  EXPECT_TRUE(params[0].value().Equals(emb_saved));
  EXPECT_TRUE(params[1].value().Equals(readout_saved));

  // A truncated v1 file no longer passes discovery: the payload size must
  // match the header.
  std::string bytes;
  ASSERT_TRUE(DefaultFileSystem().ReadFile(path, &bytes).ok());
  const std::string torn = TempPath("v1_torn.bin");
  ASSERT_TRUE(DefaultFileSystem()
                  .WriteFile(torn, bytes.substr(0, bytes.size() - 7))
                  .ok());
  EXPECT_FALSE(IsCheckpoint(torn));
}

TEST(CheckpointV2Test, LegacyV1LoadIsCountedV2IsNot) {
  auto params = MakeParams(5);
  const std::string v1_path = TempPath("v1_counted.bin");
  {
    std::ofstream out(v1_path, std::ios::binary);
    out << "KUCNET_CKPT_V1\n" << 2 << '\n';
    for (const Parameter* p : Ptrs(params)) {
      out << p->name() << ' ' << p->rows() << ' ' << p->cols() << '\n';
    }
    for (const Parameter* p : Ptrs(params)) {
      out.write(reinterpret_cast<const char*>(p->value().data()),
                static_cast<std::streamsize>(p->value().size() *
                                             sizeof(real_t)));
    }
  }
  // Every legacy load bumps checkpoint.legacy_load, so operators can find
  // which fleets still produce pre-v2 checkpoints before retiring v1.
  obs::SetEnabled(true);
  obs::Counter& counter =
      obs::DefaultRegistry().GetCounter("checkpoint.legacy_load");
  const int64_t before = counter.Value();
  ASSERT_TRUE(TryLoadParameters(Ptrs(params), v1_path).ok());
  EXPECT_EQ(counter.Value(), before + 1);
  // A v2 round-trip leaves the legacy counter alone.
  const std::string v2_path = TempPath("v2_not_counted.kuc");
  ASSERT_TRUE(TrySaveParameters(Ptrs(params), v2_path).ok());
  ASSERT_TRUE(TryLoadParameters(Ptrs(params), v2_path).ok());
  EXPECT_EQ(counter.Value(), before + 1);
  obs::SetEnabled(false);
}

/// The crash-safety sweep of the issue: learn how many IO ops a save takes,
/// then kill it at op 1, 2, ..., N (clean and torn) and require that the
/// previously saved checkpoint is never destroyed and never unreadable.
TEST(CheckpointV2Test, FaultSweepNeverCorruptsExistingCheckpoint) {
  auto old_params = MakeParams(10);
  const Matrix old_emb = old_params[0].value();
  auto new_params = MakeParams(11);

  FaultInjectingFileSystem faulty(&DefaultFileSystem());
  const std::string path = TempPath("sweep.kuc");
  ASSERT_TRUE(TrySaveParameters(Ptrs(old_params), path, &faulty).ok());
  // Learn the op count of one full save.
  faulty.ResetOpCount();
  ASSERT_TRUE(TrySaveParameters(Ptrs(new_params), path, &faulty).ok());
  const int64_t total_ops = faulty.op_count();
  ASSERT_GE(total_ops, 2);  // at least write + rename

  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    for (int64_t n = 1; n <= total_ops; ++n) {
      // Restore the "previous good checkpoint" state, then crash a save.
      ASSERT_TRUE(TrySaveParameters(Ptrs(old_params), path, nullptr).ok());
      faulty.FailFrom(n, mode);
      EXPECT_FALSE(TrySaveParameters(Ptrs(new_params), path, &faulty).ok());
      faulty.Disarm();

      // The directory must hold a complete, loadable checkpoint — the old
      // one, untouched by the killed save.
      ASSERT_TRUE(IsCheckpoint(path)) << "mode=" << static_cast<int>(mode)
                                      << " n=" << n;
      auto probe = MakeParams(12);
      ASSERT_TRUE(TryLoadParameters(Ptrs(probe), path).ok());
      EXPECT_TRUE(probe[0].value().Equals(old_emb)) << "n=" << n;
    }
  }
}

TEST(AdamStateTest, RoundTripContinuesBitwiseIdentically) {
  AdamOptions opts;
  opts.learning_rate = 1e-2;
  opts.weight_decay = 1e-4;

  // Train a few steps, snapshot, train more; the restored copy must follow
  // the original bit for bit.
  auto params_a = MakeParams(20);
  auto params_b = MakeParams(20);
  Adam adam_a(opts), adam_b(opts);
  Rng grad_rng(7);
  auto step_both = [&](int steps, bool both) {
    for (int s = 0; s < steps; ++s) {
      const Matrix g0 = Matrix::RandomNormal(8, 4, 1.0, grad_rng);
      const Matrix g1 = Matrix::RandomNormal(4, 1, 1.0, grad_rng);
      params_a[0].AccumulateDense(g0);
      params_a[1].AccumulateDense(g1);
      adam_a.Step(Ptrs(params_a));
      if (both) {
        params_b[0].AccumulateDense(g0);
        params_b[1].AccumulateDense(g1);
        adam_b.Step(Ptrs(params_b));
      }
    }
  };
  step_both(3, /*both=*/true);

  ByteWriter out;
  adam_a.AppendState(Ptrs(params_a), &out);
  const std::string blob = out.buffer();

  // Restore the snapshot into a brand-new optimizer instance.
  Adam adam_c(opts);
  ByteReader in(blob);
  ASSERT_TRUE(adam_c.RestoreState(Ptrs(params_b), &in).ok());
  EXPECT_EQ(adam_c.step_count(), 3);

  // Continue both optimizers on identical gradients.
  Rng follow(99);
  for (int s = 0; s < 4; ++s) {
    const Matrix g0 = Matrix::RandomNormal(8, 4, 1.0, follow);
    params_a[0].AccumulateDense(g0);
    adam_a.Step(Ptrs(params_a));
    params_b[0].AccumulateDense(g0);
    adam_c.Step(Ptrs(params_b));
  }
  EXPECT_TRUE(params_a[0].value().Equals(params_b[0].value()));
  EXPECT_TRUE(params_a[1].value().Equals(params_b[1].value()));
}

TEST(AdamStateTest, RestoreRejectsUnknownOrMismatched) {
  AdamOptions opts;
  auto params = MakeParams(21);
  Adam adam(opts);
  params[0].AccumulateDense(Matrix::Filled(8, 4, 0.5));
  adam.Step(Ptrs(params));

  ByteWriter out;
  adam.AppendState(Ptrs(params), &out);

  // Unknown parameter name.
  std::vector<Parameter> renamed;
  renamed.emplace_back("other", Matrix::Zeros(8, 4));
  renamed.emplace_back("readout", Matrix::Zeros(4, 1));
  Adam fresh(opts);
  ByteReader in1(out.buffer());
  EXPECT_FALSE(fresh.RestoreState(Ptrs(renamed), &in1).ok());

  // Truncated blob.
  const std::string truncated = out.buffer().substr(0, out.buffer().size() / 2);
  ByteReader in2(truncated);
  EXPECT_FALSE(fresh.RestoreState(Ptrs(params), &in2).ok());
}

TEST(RngStateTest, ExportRestoreResumesStreamExactly) {
  Rng a(1234);
  for (int i = 0; i < 17; ++i) a.Next64();
  a.Normal();  // leaves a cached Box-Muller spare
  const RngState snap = a.ExportState();

  Rng b(1);  // arbitrary different state
  b.RestoreState(snap);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a.Next64(), b.Next64()) << "stream diverged at draw " << i;
  }
  // The cached normal must survive too.
  Rng c(1234);
  for (int i = 0; i < 17; ++i) c.Next64();
  c.Normal();
  Rng d(1);
  d.RestoreState(c.ExportState());
  EXPECT_EQ(c.Normal(), d.Normal());
  EXPECT_EQ(c.Normal(), d.Normal());
}

TEST(TrainSnapshotTest, EncodeDecodeRoundTrip) {
  auto params = MakeParams(30);
  AdamOptions aopts;
  Adam adam(aopts);
  params[0].AccumulateDense(Matrix::Filled(8, 4, 1.0));
  adam.Step(Ptrs(params));

  TrainSnapshotMeta meta;
  meta.epoch = 5;
  meta.train_seconds = 12.5;
  meta.learning_rate = 3e-4;
  meta.rollbacks = 1;
  Rng rng(77);
  rng.Next64();
  meta.rng = rng.ExportState();
  meta.curve.push_back({1, 0.9, 1.0, -1.0, -1.0});
  meta.curve.push_back({2, 0.7, 2.0, 0.31, 0.22});

  const std::string blob = EncodeTrainSnapshot(meta, Ptrs(params), &adam);

  auto params2 = MakeParams(31);
  Adam adam2(aopts);
  TrainSnapshotMeta back;
  ASSERT_TRUE(DecodeTrainSnapshot(blob, &back, Ptrs(params2), &adam2).ok());
  EXPECT_EQ(back.epoch, 5);
  EXPECT_DOUBLE_EQ(back.train_seconds, 12.5);
  EXPECT_DOUBLE_EQ(back.learning_rate, 3e-4);
  EXPECT_EQ(back.rollbacks, 1);
  EXPECT_EQ(back.rng.state, meta.rng.state);
  ASSERT_EQ(back.curve.size(), 2u);
  EXPECT_DOUBLE_EQ(back.curve[1].recall, 0.31);
  EXPECT_TRUE(params2[0].value().Equals(params[0].value()));
  EXPECT_EQ(adam2.step_count(), 1);

  // Corruption is caught by the footer.
  std::string bad = blob;
  bad[blob.size() / 3] ^= 0x40;
  EXPECT_FALSE(DecodeTrainSnapshot(bad, &back, Ptrs(params2), &adam2).ok());
}

TEST(TrainSnapshotTest, DiscoverySkipsTornNewestAndFindsOlderValid) {
  FileSystem& fs = DefaultFileSystem();
  const std::string dir = TempPath("snap_discovery");
  ASSERT_TRUE(fs.MakeDirs(dir).ok());

  auto params = MakeParams(40);
  TrainSnapshotMeta meta;
  meta.rng = Rng(1).ExportState();
  meta.epoch = 2;
  ASSERT_TRUE(WriteTrainSnapshot(TrainSnapshotPath(dir, 2), meta,
                                 Ptrs(params), nullptr)
                  .ok());
  meta.epoch = 4;
  ASSERT_TRUE(WriteTrainSnapshot(TrainSnapshotPath(dir, 4), meta,
                                 Ptrs(params), nullptr)
                  .ok());

  std::string path;
  EXPECT_EQ(FindLatestTrainSnapshot(dir, &path), 4);
  EXPECT_EQ(path, TrainSnapshotPath(dir, 4));

  // Tear the newest snapshot: discovery must fall back to epoch 2.
  std::string bytes;
  ASSERT_TRUE(fs.ReadFile(TrainSnapshotPath(dir, 4), &bytes).ok());
  ASSERT_TRUE(fs.WriteFile(TrainSnapshotPath(dir, 4),
                           bytes.substr(0, bytes.size() / 3))
                  .ok());
  EXPECT_FALSE(IsTrainSnapshot(TrainSnapshotPath(dir, 4)));
  EXPECT_TRUE(IsTrainSnapshot(TrainSnapshotPath(dir, 2)));
  EXPECT_EQ(FindLatestTrainSnapshot(dir, &path), 2);
  EXPECT_EQ(path, TrainSnapshotPath(dir, 2));

  // An empty or missing directory finds nothing.
  EXPECT_EQ(FindLatestTrainSnapshot(dir + "/missing", &path), -1);
}

TEST(TrainSnapshotTest, PruneKeepsNewest) {
  FileSystem& fs = DefaultFileSystem();
  const std::string dir = TempPath("snap_prune");
  ASSERT_TRUE(fs.MakeDirs(dir).ok());
  auto params = MakeParams(41);
  TrainSnapshotMeta meta;
  for (int e = 1; e <= 5; ++e) {
    meta.epoch = e;
    ASSERT_TRUE(WriteTrainSnapshot(TrainSnapshotPath(dir, e), meta,
                                   Ptrs(params), nullptr)
                    .ok());
  }
  PruneTrainSnapshots(dir, 2);
  std::vector<std::string> names;
  ASSERT_TRUE(fs.ListDir(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"snapshot_epoch_000004.kuc",
                                             "snapshot_epoch_000005.kuc"}));
}

}  // namespace
}  // namespace kucnet
