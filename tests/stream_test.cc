#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "ppr/dynamic_ppr.h"
#include "ppr/ppr.h"
#include "stream/streaming_ckg.h"
#include "stream/update_log.h"
#include "testing/oracle.h"
#include "util/fs.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// Crash-consistency and incremental-repair coverage for the streaming CKG:
// WAL round trips, segment rotation, torn-tail recovery, the exactness of
// local PPR repair against the recompute oracle, and the kill-at-every-op
// sweep asserting recovery is byte-identical (StateDigest) to an
// uninterrupted stream at every crash point.

namespace kucnet {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.name = "stream-tiny";
  d.num_users = 4;
  d.num_items = 3;
  d.num_kg_nodes = 5;
  d.num_kg_relations = 2;
  // User 3 has no interactions: a dangling user node exercising the
  // absorbed-mass reversal when its first edge streams in.
  d.train = {{0, 0}, {0, 1}, {1, 0}, {2, 2}};
  d.kg = {{0, 0, 3}, {1, 1, 4}, {3, 0, 4}};
  return d;
}

StreamingCkgOptions SmallSegments() {
  StreamingCkgOptions options;
  options.wal.segment_records = 4;
  return options;
}

// A fixed update script: interactions and KG triplets, including a
// duplicate (index 3 repeats index 0) and dangling user 3's first edge.
std::vector<GraphUpdate> UpdateScript() {
  return {
      GraphUpdate::Interaction(0, 1, 1),
      GraphUpdate::Interaction(0, 3, 0),  // dangling user's first edge
      GraphUpdate::KgTriplet(0, 2, 1, 4),
      GraphUpdate::Interaction(0, 1, 1),  // duplicate of the first
      GraphUpdate::KgTriplet(0, 0, 0, 2),
      GraphUpdate::Interaction(0, 2, 0),
      GraphUpdate::Interaction(0, 0, 2),
      GraphUpdate::KgTriplet(0, 4, 0, 3),
      GraphUpdate::Interaction(0, 3, 1),
      GraphUpdate::KgTriplet(0, 2, 1, 4),  // duplicate triplet
      GraphUpdate::Interaction(0, 1, 2),
      GraphUpdate::Interaction(0, 2, 1),
  };
}

Status ApplyUpdate(StreamingCkg& ckg, const GraphUpdate& update) {
  if (update.type == UpdateType::kInteraction) {
    return ckg.AppendInteraction(update.a, update.b);
  }
  return ckg.AppendKgTriplet(update.a, update.b, update.c);
}

// Per-node agreement between the incremental estimate and the recompute
// oracle, within the residual-mass bound, plus mass conservation of the
// incremental state.
void ExpectMatchesRecomputeOracle(const StreamingCkg& ckg) {
  const DynamicCkg& graph = ckg.graph();
  const DynamicPprTable& ppr = ckg.ppr();
  for (int64_t u = 0; u < graph.num_users(); ++u) {
    const testing::OraclePprResult fresh = testing::OracleStreamRecompute(
        graph, u, ppr.alpha(), ppr.epsilon());
    real_t fresh_residual = 0.0;
    for (const auto& [node, r] : fresh.residual) {
      fresh_residual += std::abs(r);
    }
    const real_t bound = ppr.ResidualMass(u) + fresh_residual + 1e-12;

    const auto& incremental = ppr.Estimate(u);
    for (const auto& [node, value] : incremental) {
      const auto it = fresh.estimate.find(node);
      const real_t reference = it == fresh.estimate.end() ? 0.0 : it->second;
      EXPECT_NEAR(value, reference, bound)
          << "user " << u << " node " << node;
    }
    for (const auto& [node, reference] : fresh.estimate) {
      if (incremental.count(node)) continue;  // compared above
      EXPECT_NEAR(0.0, reference, bound) << "user " << u << " node " << node;
    }

    // Mass conservation: estimate + residual must still sum to 1.
    real_t mass = 0.0;
    for (const auto& [node, value] : incremental) mass += value;
    for (const auto& [node, r] : ppr.Residual(u)) mass += r;
    EXPECT_NEAR(mass, 1.0, 1e-9) << "user " << u;
  }
}

TEST(GraphUpdateLogTest, RoundTripsRecordsAcrossReopen) {
  InMemoryFileSystem fs;
  std::vector<GraphUpdate> written;
  {
    GraphUpdateLog log(&fs, "wal");
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    EXPECT_TRUE(recovered.empty());
    for (uint64_t k = 0; k < 7; ++k) {
      GraphUpdate update =
          k % 2 == 0 ? GraphUpdate::Interaction(log.next_seq(), k, k + 1)
                     : GraphUpdate::KgTriplet(log.next_seq(), k, 0, k + 2);
      ASSERT_TRUE(log.Append(update).ok());
      written.push_back(update);
    }
  }
  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(reopened.Open(&recovered).ok());
  EXPECT_EQ(recovered, written);
  EXPECT_EQ(reopened.next_seq(), 7u);
  EXPECT_EQ(reopened.torn_tails_recovered(), 0);
}

TEST(GraphUpdateLogTest, RotatesAndSealsSegments) {
  InMemoryFileSystem fs;
  GraphUpdateLog::Options options;
  options.segment_records = 3;
  GraphUpdateLog log(&fs, "wal", options);
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(log.Append(GraphUpdate::Interaction(k, 0, 0)).ok());
  }
  // 8 records at 3 per segment: two sealed, the third open with 2 records.
  EXPECT_TRUE(fs.Exists("wal/wal_000000.log"));
  EXPECT_TRUE(fs.Exists("wal/wal_000001.log"));
  EXPECT_TRUE(fs.Exists("wal/wal_000002.open"));
  EXPECT_EQ(log.segments_sealed(), 2);

  GraphUpdateLog reopened(&fs, "wal");
  recovered.clear();
  ASSERT_TRUE(reopened.Open(&recovered).ok());
  EXPECT_EQ(recovered.size(), 8u);
  EXPECT_EQ(reopened.next_seq(), 8u);
}

TEST(GraphUpdateLogTest, TruncatesTornTailOfOpenSegment) {
  InMemoryFileSystem fs;
  {
    GraphUpdateLog log(&fs, "wal");
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    for (uint64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(log.Append(GraphUpdate::Interaction(k, 7, 7)).ok());
    }
  }
  // Simulate a non-atomic writer dying mid-append: valid prefix + garbage.
  std::string image;
  ASSERT_TRUE(fs.ReadFile("wal/wal_000000.open", &image).ok());
  ASSERT_TRUE(
      fs.WriteFile("wal/wal_000000.open", image + "torn-garbage").ok());

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(reopened.Open(&recovered).ok());
  EXPECT_EQ(recovered.size(), 3u);
  EXPECT_EQ(reopened.torn_tails_recovered(), 1);
  // The log keeps accepting appends after truncation.
  ASSERT_TRUE(reopened.Append(GraphUpdate::Interaction(3, 1, 1)).ok());
}

TEST(GraphUpdateLogTest, RejectsCorruptionInSealedSegment) {
  InMemoryFileSystem fs;
  {
    GraphUpdateLog::Options options;
    options.segment_records = 2;
    GraphUpdateLog log(&fs, "wal", options);
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    for (uint64_t k = 0; k < 5; ++k) {
      ASSERT_TRUE(log.Append(GraphUpdate::Interaction(k, 1, 2)).ok());
    }
  }
  std::string image;
  ASSERT_TRUE(fs.ReadFile("wal/wal_000000.log", &image).ok());
  image[image.size() / 2] ^= 0x40;  // bit flip mid-record
  ASSERT_TRUE(fs.WriteFile("wal/wal_000000.log", image).ok());

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  EXPECT_FALSE(reopened.Open(&recovered).ok());
}

TEST(GraphUpdateLogTest, RemovesStrayTempFiles) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("wal/wal_000000.open.tmp", "half-written").ok());
  GraphUpdateLog log(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());
  EXPECT_FALSE(fs.Exists("wal/wal_000000.open.tmp"));
}

TEST(DynamicPprTest, ComputeMatchesStaticTableBitwise) {
  const Dataset data = TinyDataset();
  DynamicCkg graph(data.num_users, data.num_items, data.num_kg_nodes,
                   data.num_kg_relations, data.train, data.kg, data.user_kg);
  const PprTable reference = PprTable::Compute(data.BuildCkg());
  const DynamicPprTable dynamic = DynamicPprTable::Compute(graph);
  ASSERT_EQ(dynamic.num_users(), reference.num_users());
  for (int64_t u = 0; u < dynamic.num_users(); ++u) {
    // Same push discipline, same CSR iteration order: bitwise equality.
    EXPECT_EQ(dynamic.Estimate(u), reference.Vector(u)) << "user " << u;
  }
}

TEST(DynamicPprTest, RepairMatchesRecomputeOracleOnScript) {
  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> ckg;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &ckg)
                  .ok());
  for (const GraphUpdate& update : UpdateScript()) {
    ASSERT_TRUE(ApplyUpdate(*ckg, update).ok());
    ExpectMatchesRecomputeOracle(*ckg);
  }
  EXPECT_EQ(ckg->stats().duplicates, 2);
  EXPECT_EQ(ckg->stats().applied, 10);
}

TEST(DynamicPprTest, RepairMatchesOracleOnRandomStreams) {
  Rng rng(20260809);
  for (int round = 0; round < 5; ++round) {
    InMemoryFileSystem fs;
    std::unique_ptr<StreamingCkg> ckg;
    ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal",
                                   SmallSegments(), nullptr, &ckg)
                    .ok());
    const DynamicCkg& graph = ckg->graph();
    for (int k = 0; k < 12; ++k) {
      if (rng.UniformInt(2) == 0) {
        ASSERT_TRUE(ckg->AppendInteraction(
                           rng.UniformInt(graph.num_users()),
                           rng.UniformInt(graph.num_items()))
                        .ok());
      } else {
        ASSERT_TRUE(ckg->AppendKgTriplet(
                           rng.UniformInt(graph.num_kg_nodes()),
                           rng.UniformInt(graph.num_kg_relations()),
                           rng.UniformInt(graph.num_kg_nodes()))
                        .ok());
      }
    }
    ExpectMatchesRecomputeOracle(*ckg);
  }
}

TEST(StreamingCkgTest, TouchedUsersIncludeTheInteractingUser) {
  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> ckg;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &ckg)
                  .ok());
  std::vector<std::vector<int64_t>> invalidations;
  ckg->set_invalidation_hook(
      [&](const std::vector<int64_t>& users) { invalidations.push_back(users); });
  ASSERT_TRUE(ckg->AppendInteraction(1, 2).ok());
  ASSERT_EQ(invalidations.size(), 1u);
  EXPECT_TRUE(std::binary_search(invalidations[0].begin(),
                                 invalidations[0].end(), 1));
  // A duplicate applies nothing and must not invalidate anyone.
  ASSERT_TRUE(ckg->AppendInteraction(1, 2).ok());
  EXPECT_EQ(invalidations.size(), 1u);
}

TEST(StreamingCkgTest, RejectsOutOfRangeUpdates) {
  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> ckg;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &ckg)
                  .ok());
  const uint64_t seq_before = ckg->wal().next_seq();
  EXPECT_FALSE(ckg->AppendInteraction(-1, 0).ok());
  EXPECT_FALSE(ckg->AppendInteraction(0, 99).ok());
  EXPECT_FALSE(ckg->AppendKgTriplet(0, 99, 0).ok());
  EXPECT_FALSE(ckg->AppendKgTriplet(99, 0, 0).ok());
  // Rejected updates are never logged.
  EXPECT_EQ(ckg->wal().next_seq(), seq_before);
}

TEST(StreamingCkgTest, RecoveryReplayMatchesUninterruptedRun) {
  InMemoryFileSystem fs;
  uint64_t uninterrupted_digest = 0;
  {
    std::unique_ptr<StreamingCkg> ckg;
    ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal",
                                   SmallSegments(), nullptr, &ckg)
                    .ok());
    for (const GraphUpdate& update : UpdateScript()) {
      ASSERT_TRUE(ApplyUpdate(*ckg, update).ok());
    }
    uninterrupted_digest = ckg->StateDigest();
  }
  std::unique_ptr<StreamingCkg> recovered;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &recovered)
                  .ok());
  EXPECT_EQ(recovered->stats().replayed, 12);
  EXPECT_EQ(recovered->StateDigest(), uninterrupted_digest);
}

TEST(StreamingCkgTest, RepairIsIdenticalAcrossThreadCounts) {
  InMemoryFileSystem fs_serial;
  InMemoryFileSystem fs_pooled;
  ThreadPool pool(3);
  std::unique_ptr<StreamingCkg> serial;
  std::unique_ptr<StreamingCkg> pooled;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs_serial, "wal",
                                 SmallSegments(), nullptr, &serial)
                  .ok());
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs_pooled, "wal",
                                 SmallSegments(), &pool, &pooled)
                  .ok());
  for (const GraphUpdate& update : UpdateScript()) {
    ASSERT_TRUE(ApplyUpdate(*serial, update).ok());
    ASSERT_TRUE(ApplyUpdate(*pooled, update).ok());
  }
  EXPECT_EQ(serial->StateDigest(), pooled->StateDigest());
}

// The flagship robustness sweep: arm a fault at every single io operation
// the streaming phase performs (both clean-failure and torn-write modes),
// crash there, recover, and require the recovered state to be byte-identical
// (StateDigest) to an uninterrupted run over the acked prefix — then finish
// the remaining updates and require byte-identity with the full clean run.
TEST(StreamingCkgTest, KillAtEveryWalOpSweepRecoversByteIdentical) {
  const Dataset data = TinyDataset();
  const std::vector<GraphUpdate> script = UpdateScript();

  // Reference digests from a clean run: digest_after[i] = state after the
  // first i accepted appends.
  std::vector<uint64_t> digest_after;
  int64_t total_stream_ops = 0;
  {
    InMemoryFileSystem mem;
    FaultInjectingFileSystem fs(&mem);
    std::unique_ptr<StreamingCkg> ckg;
    ASSERT_TRUE(StreamingCkg::Open(data, &fs, "wal", SmallSegments(),
                                   nullptr, &ckg)
                    .ok());
    fs.ResetOpCount();
    digest_after.push_back(ckg->StateDigest());
    for (const GraphUpdate& update : script) {
      ASSERT_TRUE(ApplyUpdate(*ckg, update).ok());
      digest_after.push_back(ckg->StateDigest());
    }
    total_stream_ops = fs.op_count();
  }
  // 12 appends at 2 ops each plus segment-seal renames.
  ASSERT_GE(total_stream_ops, 24);

  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    for (int64_t kill_at = 1; kill_at <= total_stream_ops; ++kill_at) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " kill_at=" + std::to_string(kill_at));
      InMemoryFileSystem mem;
      FaultInjectingFileSystem fs(&mem);
      size_t acked = 0;
      {
        std::unique_ptr<StreamingCkg> ckg;
        ASSERT_TRUE(StreamingCkg::Open(data, &fs, "wal", SmallSegments(),
                                       nullptr, &ckg)
                        .ok());
        fs.FailFrom(kill_at, mode);
        for (const GraphUpdate& update : script) {
          if (!ApplyUpdate(*ckg, update).ok()) break;  // the "crash"
          ++acked;
        }
        EXPECT_EQ(fs.faults_fired() > 0, acked < script.size());
      }
      fs.Disarm();

      // Recovery must reconstruct exactly the acked prefix...
      std::unique_ptr<StreamingCkg> recovered;
      ASSERT_TRUE(StreamingCkg::Open(data, &fs, "wal", SmallSegments(),
                                     nullptr, &recovered)
                      .ok());
      EXPECT_EQ(static_cast<size_t>(recovered->stats().replayed), acked);
      EXPECT_EQ(recovered->StateDigest(), digest_after[acked]);

      // ...and streaming must be able to pick up where it left off.
      for (size_t k = acked; k < script.size(); ++k) {
        ASSERT_TRUE(ApplyUpdate(*recovered, script[k]).ok());
      }
      EXPECT_EQ(recovered->StateDigest(), digest_after.back());
    }
  }
}

}  // namespace
}  // namespace kucnet
