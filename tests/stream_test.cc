#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "ppr/dynamic_ppr.h"
#include "ppr/ppr.h"
#include "stream/streaming_ckg.h"
#include "stream/update_log.h"
#include "testing/oracle.h"
#include "util/fs.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// Crash-consistency and incremental-repair coverage for the streaming CKG:
// WAL round trips, segment rotation, torn-tail recovery, the exactness of
// local PPR repair against the recompute oracle, and the kill-at-every-op
// sweep asserting recovery is byte-identical (StateDigest) to an
// uninterrupted stream at every crash point.

namespace kucnet {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.name = "stream-tiny";
  d.num_users = 4;
  d.num_items = 3;
  d.num_kg_nodes = 5;
  d.num_kg_relations = 2;
  // User 3 has no interactions: a dangling user node exercising the
  // absorbed-mass reversal when its first edge streams in.
  d.train = {{0, 0}, {0, 1}, {1, 0}, {2, 2}};
  d.kg = {{0, 0, 3}, {1, 1, 4}, {3, 0, 4}};
  return d;
}

StreamingCkgOptions SmallSegments() {
  StreamingCkgOptions options;
  options.wal.segment_records = 4;
  return options;
}

// A fixed update script: interactions and KG triplets, including a
// duplicate (index 3 repeats index 0) and dangling user 3's first edge.
std::vector<GraphUpdate> UpdateScript() {
  return {
      GraphUpdate::Interaction(0, 1, 1),
      GraphUpdate::Interaction(0, 3, 0),  // dangling user's first edge
      GraphUpdate::KgTriplet(0, 2, 1, 4),
      GraphUpdate::Interaction(0, 1, 1),  // duplicate of the first
      GraphUpdate::KgTriplet(0, 0, 0, 2),
      GraphUpdate::Interaction(0, 2, 0),
      GraphUpdate::Interaction(0, 0, 2),
      GraphUpdate::KgTriplet(0, 4, 0, 3),
      GraphUpdate::Interaction(0, 3, 1),
      GraphUpdate::KgTriplet(0, 2, 1, 4),  // duplicate triplet
      GraphUpdate::Interaction(0, 1, 2),
      GraphUpdate::Interaction(0, 2, 1),
  };
}

Status ApplyUpdate(StreamingCkg& ckg, const GraphUpdate& update) {
  if (update.type == UpdateType::kInteraction) {
    return ckg.AppendInteraction(update.a, update.b);
  }
  return ckg.AppendKgTriplet(update.a, update.b, update.c);
}

// Per-node agreement between the incremental estimate and the recompute
// oracle, within the residual-mass bound, plus mass conservation of the
// incremental state.
void ExpectMatchesRecomputeOracle(const StreamingCkg& ckg) {
  const DynamicCkg& graph = ckg.graph();
  const DynamicPprTable& ppr = ckg.ppr();
  for (int64_t u = 0; u < graph.num_users(); ++u) {
    const testing::OraclePprResult fresh = testing::OracleStreamRecompute(
        graph, u, ppr.alpha(), ppr.epsilon());
    real_t fresh_residual = 0.0;
    for (const auto& [node, r] : fresh.residual) {
      fresh_residual += std::abs(r);
    }
    const real_t bound = ppr.ResidualMass(u) + fresh_residual + 1e-12;

    const auto& incremental = ppr.Estimate(u);
    for (const auto& [node, value] : incremental) {
      const auto it = fresh.estimate.find(node);
      const real_t reference = it == fresh.estimate.end() ? 0.0 : it->second;
      EXPECT_NEAR(value, reference, bound)
          << "user " << u << " node " << node;
    }
    for (const auto& [node, reference] : fresh.estimate) {
      if (incremental.count(node)) continue;  // compared above
      EXPECT_NEAR(0.0, reference, bound) << "user " << u << " node " << node;
    }

    // Mass conservation: estimate + residual must still sum to 1.
    real_t mass = 0.0;
    for (const auto& [node, value] : incremental) mass += value;
    for (const auto& [node, r] : ppr.Residual(u)) mass += r;
    EXPECT_NEAR(mass, 1.0, 1e-9) << "user " << u;
  }
}

TEST(GraphUpdateLogTest, RoundTripsRecordsAcrossReopen) {
  InMemoryFileSystem fs;
  std::vector<GraphUpdate> written;
  {
    GraphUpdateLog log(&fs, "wal");
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    EXPECT_TRUE(recovered.empty());
    for (uint64_t k = 0; k < 7; ++k) {
      GraphUpdate update =
          k % 2 == 0 ? GraphUpdate::Interaction(log.next_seq(), k, k + 1)
                     : GraphUpdate::KgTriplet(log.next_seq(), k, 0, k + 2);
      ASSERT_TRUE(log.Append(update).ok());
      written.push_back(update);
    }
  }
  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(reopened.Open(&recovered).ok());
  EXPECT_EQ(recovered, written);
  EXPECT_EQ(reopened.next_seq(), 7u);
  EXPECT_EQ(reopened.torn_tails_recovered(), 0);
}

TEST(GraphUpdateLogTest, RotatesAndSealsSegments) {
  InMemoryFileSystem fs;
  GraphUpdateLog::Options options;
  options.segment_records = 3;
  GraphUpdateLog log(&fs, "wal", options);
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(log.Append(GraphUpdate::Interaction(k, 0, 0)).ok());
  }
  // 8 records at 3 per segment: two sealed, the third open with 2 records.
  EXPECT_TRUE(fs.Exists("wal/wal_000000.log"));
  EXPECT_TRUE(fs.Exists("wal/wal_000001.log"));
  EXPECT_TRUE(fs.Exists("wal/wal_000002.open"));
  EXPECT_EQ(log.segments_sealed(), 2);

  GraphUpdateLog reopened(&fs, "wal");
  recovered.clear();
  ASSERT_TRUE(reopened.Open(&recovered).ok());
  EXPECT_EQ(recovered.size(), 8u);
  EXPECT_EQ(reopened.next_seq(), 8u);
}

TEST(GraphUpdateLogTest, TruncatesTornTailOfOpenSegment) {
  InMemoryFileSystem fs;
  {
    GraphUpdateLog log(&fs, "wal");
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    for (uint64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(log.Append(GraphUpdate::Interaction(k, 7, 7)).ok());
    }
  }
  // Simulate a non-atomic writer dying mid-append: valid prefix + garbage.
  std::string image;
  ASSERT_TRUE(fs.ReadFile("wal/wal_000000.open", &image).ok());
  ASSERT_TRUE(
      fs.WriteFile("wal/wal_000000.open", image + "torn-garbage").ok());

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(reopened.Open(&recovered).ok());
  EXPECT_EQ(recovered.size(), 3u);
  EXPECT_EQ(reopened.torn_tails_recovered(), 1);
  // The log keeps accepting appends after truncation.
  ASSERT_TRUE(reopened.Append(GraphUpdate::Interaction(3, 1, 1)).ok());
}

TEST(GraphUpdateLogTest, RejectsCorruptionInSealedSegment) {
  InMemoryFileSystem fs;
  {
    GraphUpdateLog::Options options;
    options.segment_records = 2;
    GraphUpdateLog log(&fs, "wal", options);
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    for (uint64_t k = 0; k < 5; ++k) {
      ASSERT_TRUE(log.Append(GraphUpdate::Interaction(k, 1, 2)).ok());
    }
  }
  std::string image;
  ASSERT_TRUE(fs.ReadFile("wal/wal_000000.log", &image).ok());
  image[image.size() / 2] ^= 0x40;  // bit flip mid-record
  ASSERT_TRUE(fs.WriteFile("wal/wal_000000.log", image).ok());

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  EXPECT_FALSE(reopened.Open(&recovered).ok());
}

TEST(GraphUpdateLogTest, RemovesStrayTempFiles) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("wal/wal_000000.open.tmp", "half-written").ok());
  GraphUpdateLog log(&fs, "wal");
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());
  EXPECT_FALSE(fs.Exists("wal/wal_000000.open.tmp"));
}

// ---- Group commit ------------------------------------------------------------

GraphUpdate ScriptRecord(uint64_t seq) {
  return seq % 2 == 0 ? GraphUpdate::Interaction(seq, seq % 3, seq % 2)
                      : GraphUpdate::KgTriplet(seq, seq % 4, 0, (seq + 1) % 4);
}

TEST(GraphUpdateLogTest, GroupCommitBuffersUntilTheBatchBoundary) {
  InMemoryFileSystem fs;
  GraphUpdateLog::Options options;
  options.group_size = 3;
  GraphUpdateLog log(&fs, "wal", options);
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());

  ASSERT_TRUE(log.Append(ScriptRecord(0)).ok());
  ASSERT_TRUE(log.Append(ScriptRecord(1)).ok());
  EXPECT_EQ(log.pending_records(), 2);
  {
    // A buffered-but-unflushed record is NOT durable: a reopen of the same
    // directory sees only the flushed prefix (here: nothing).
    GraphUpdateLog peek(&fs, "wal");
    std::vector<GraphUpdate> durable;
    ASSERT_TRUE(peek.Open(&durable).ok());
    EXPECT_TRUE(durable.empty());
  }

  // The third append reaches group_size: the whole batch becomes durable.
  ASSERT_TRUE(log.Append(ScriptRecord(2)).ok());
  EXPECT_EQ(log.pending_records(), 0);
  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> all;
  ASSERT_TRUE(reopened.Open(&all).ok());
  ASSERT_EQ(all.size(), 3u);
  for (uint64_t k = 0; k < 3; ++k) EXPECT_EQ(all[k], ScriptRecord(k));
}

TEST(GraphUpdateLogTest, ExplicitFlushMakesTheBufferedBatchDurable) {
  InMemoryFileSystem fs;
  GraphUpdateLog::Options options;
  options.group_size = 100;
  GraphUpdateLog log(&fs, "wal", options);
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());
  ASSERT_TRUE(log.Flush().ok());  // no-op with nothing pending

  for (uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(log.Append(ScriptRecord(k)).ok());
  }
  EXPECT_EQ(log.pending_records(), 5);
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.pending_records(), 0);

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> all;
  ASSERT_TRUE(reopened.Open(&all).ok());
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(reopened.next_seq(), 5u);
}

TEST(GraphUpdateLogTest, SegmentIsNeverSealedWithUnflushedRecords) {
  InMemoryFileSystem fs;
  GraphUpdateLog::Options options;
  options.segment_records = 3;
  options.group_size = 2;
  GraphUpdateLog log(&fs, "wal", options);
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());

  // Appends 0,1 flush at the group boundary; append 2 stays pending; append
  // 3 hits the full segment, which flushes record 2 *before* the seal.
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(log.Append(ScriptRecord(k)).ok());
  }
  EXPECT_EQ(log.segments_sealed(), 1);
  EXPECT_EQ(log.pending_records(), 1);  // record 3, in the new segment
  ASSERT_TRUE(log.Flush().ok());

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> all;
  ASSERT_TRUE(reopened.Open(&all).ok());
  ASSERT_EQ(all.size(), 4u);
  for (uint64_t k = 0; k < 4; ++k) EXPECT_EQ(all[k], ScriptRecord(k));
}

TEST(GraphUpdateLogTest, FailedFlushRollsBackToTheDurablePrefix) {
  InMemoryFileSystem mem;
  FaultInjectingFileSystem fs(&mem);
  GraphUpdateLog::Options options;
  options.group_size = 4;
  GraphUpdateLog log(&fs, "wal", options);
  std::vector<GraphUpdate> recovered;
  ASSERT_TRUE(log.Open(&recovered).ok());

  ASSERT_TRUE(log.Append(ScriptRecord(0)).ok());
  ASSERT_TRUE(log.Append(ScriptRecord(1)).ok());
  ASSERT_TRUE(log.Append(ScriptRecord(2)).ok());
  ASSERT_TRUE(log.Flush().ok());  // seq 0..2 durable

  ASSERT_TRUE(log.Append(ScriptRecord(3)).ok());
  ASSERT_TRUE(log.Append(ScriptRecord(4)).ok());
  fs.FailFrom(1, FaultMode::kFailCleanly);
  EXPECT_FALSE(log.Flush().ok());
  fs.Disarm();
  // The batch was discarded and the sequence rolled back: the caller
  // re-appends from the durable prefix.
  EXPECT_EQ(log.pending_records(), 0);
  EXPECT_EQ(log.next_seq(), 3u);
  ASSERT_TRUE(log.Append(ScriptRecord(3)).ok());
  ASSERT_TRUE(log.Append(ScriptRecord(4)).ok());
  ASSERT_TRUE(log.Flush().ok());

  GraphUpdateLog reopened(&fs, "wal");
  std::vector<GraphUpdate> all;
  ASSERT_TRUE(reopened.Open(&all).ok());
  ASSERT_EQ(all.size(), 5u);
  for (uint64_t k = 0; k < 5; ++k) EXPECT_EQ(all[k], ScriptRecord(k));
}

TEST(GraphUpdateLogTest, GroupedKillAtEveryOpSweepStaysRecoverable) {
  constexpr uint64_t kRecords = 10;
  GraphUpdateLog::Options options;
  options.segment_records = 4;
  options.group_size = 3;

  // Learn the op count of a clean run (appends + final flush).
  int64_t total_ops = 0;
  {
    InMemoryFileSystem mem;
    FaultInjectingFileSystem fs(&mem);
    GraphUpdateLog log(&fs, "wal", options);
    std::vector<GraphUpdate> recovered;
    ASSERT_TRUE(log.Open(&recovered).ok());
    fs.ResetOpCount();
    for (uint64_t k = 0; k < kRecords; ++k) {
      ASSERT_TRUE(log.Append(ScriptRecord(k)).ok());
    }
    ASSERT_TRUE(log.Flush().ok());
    total_ops = fs.op_count();
    // Group commit amortizes: far fewer than 2 ops per record.
    EXPECT_LT(total_ops, static_cast<int64_t>(2 * kRecords));
  }
  ASSERT_GT(total_ops, 0);

  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    for (int64_t kill_at = 1; kill_at <= total_ops; ++kill_at) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " kill_at=" + std::to_string(kill_at));
      InMemoryFileSystem mem;
      FaultInjectingFileSystem fs(&mem);
      uint64_t durable = 0;
      {
        GraphUpdateLog log(&fs, "wal", options);
        std::vector<GraphUpdate> recovered;
        ASSERT_TRUE(log.Open(&recovered).ok());
        fs.FailFrom(kill_at, mode);
        bool crashed = false;
        for (uint64_t k = 0; k < kRecords; ++k) {
          if (!log.Append(ScriptRecord(k)).ok()) {
            crashed = true;
            break;
          }
        }
        if (!crashed && !log.Flush().ok()) crashed = true;
        ASSERT_TRUE(crashed);
        // After a failed flush next_seq() IS the durable prefix (the
        // pending batch was discarded and rolled back).
        durable = log.next_seq() - static_cast<uint64_t>(log.pending_records());
      }
      fs.Disarm();

      // Recovery replays exactly the durable prefix, in order...
      GraphUpdateLog recovered_log(&fs, "wal", options);
      std::vector<GraphUpdate> replayed;
      ASSERT_TRUE(recovered_log.Open(&replayed).ok());
      ASSERT_EQ(replayed.size(), durable);
      for (uint64_t k = 0; k < durable; ++k) {
        EXPECT_EQ(replayed[k], ScriptRecord(k));
      }
      // ...and appending resumes from there to the full script.
      for (uint64_t k = durable; k < kRecords; ++k) {
        ASSERT_TRUE(recovered_log.Append(ScriptRecord(k)).ok());
      }
      ASSERT_TRUE(recovered_log.Flush().ok());
      GraphUpdateLog final_log(&fs, "wal", options);
      std::vector<GraphUpdate> all;
      ASSERT_TRUE(final_log.Open(&all).ok());
      ASSERT_EQ(all.size(), kRecords);
      for (uint64_t k = 0; k < kRecords; ++k) {
        EXPECT_EQ(all[k], ScriptRecord(k));
      }
    }
  }
}

TEST(DynamicPprTest, ComputeMatchesStaticTableBitwise) {
  const Dataset data = TinyDataset();
  DynamicCkg graph(data.num_users, data.num_items, data.num_kg_nodes,
                   data.num_kg_relations, data.train, data.kg, data.user_kg);
  const PprTable reference = PprTable::Compute(data.BuildCkg());
  const DynamicPprTable dynamic = DynamicPprTable::Compute(graph);
  ASSERT_EQ(dynamic.num_users(), reference.num_users());
  for (int64_t u = 0; u < dynamic.num_users(); ++u) {
    // Same push discipline, same CSR iteration order: bitwise equality.
    EXPECT_EQ(dynamic.Estimate(u), reference.Vector(u)) << "user " << u;
  }
}

TEST(DynamicPprTest, RepairMatchesRecomputeOracleOnScript) {
  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> ckg;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &ckg)
                  .ok());
  for (const GraphUpdate& update : UpdateScript()) {
    ASSERT_TRUE(ApplyUpdate(*ckg, update).ok());
    ExpectMatchesRecomputeOracle(*ckg);
  }
  EXPECT_EQ(ckg->stats().duplicates, 2);
  EXPECT_EQ(ckg->stats().applied, 10);
}

TEST(DynamicPprTest, RepairMatchesOracleOnRandomStreams) {
  Rng rng(20260809);
  for (int round = 0; round < 5; ++round) {
    InMemoryFileSystem fs;
    std::unique_ptr<StreamingCkg> ckg;
    ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal",
                                   SmallSegments(), nullptr, &ckg)
                    .ok());
    const DynamicCkg& graph = ckg->graph();
    for (int k = 0; k < 12; ++k) {
      if (rng.UniformInt(2) == 0) {
        ASSERT_TRUE(ckg->AppendInteraction(
                           rng.UniformInt(graph.num_users()),
                           rng.UniformInt(graph.num_items()))
                        .ok());
      } else {
        ASSERT_TRUE(ckg->AppendKgTriplet(
                           rng.UniformInt(graph.num_kg_nodes()),
                           rng.UniformInt(graph.num_kg_relations()),
                           rng.UniformInt(graph.num_kg_nodes()))
                        .ok());
      }
    }
    ExpectMatchesRecomputeOracle(*ckg);
  }
}

TEST(StreamingCkgTest, TouchedUsersIncludeTheInteractingUser) {
  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> ckg;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &ckg)
                  .ok());
  std::vector<std::vector<int64_t>> invalidations;
  ckg->set_invalidation_hook(
      [&](const std::vector<int64_t>& users) { invalidations.push_back(users); });
  ASSERT_TRUE(ckg->AppendInteraction(1, 2).ok());
  ASSERT_EQ(invalidations.size(), 1u);
  EXPECT_TRUE(std::binary_search(invalidations[0].begin(),
                                 invalidations[0].end(), 1));
  // A duplicate applies nothing and must not invalidate anyone.
  ASSERT_TRUE(ckg->AppendInteraction(1, 2).ok());
  EXPECT_EQ(invalidations.size(), 1u);
}

TEST(StreamingCkgTest, RejectsOutOfRangeUpdates) {
  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> ckg;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &ckg)
                  .ok());
  const uint64_t seq_before = ckg->wal().next_seq();
  EXPECT_FALSE(ckg->AppendInteraction(-1, 0).ok());
  EXPECT_FALSE(ckg->AppendInteraction(0, 99).ok());
  EXPECT_FALSE(ckg->AppendKgTriplet(0, 99, 0).ok());
  EXPECT_FALSE(ckg->AppendKgTriplet(99, 0, 0).ok());
  // Rejected updates are never logged.
  EXPECT_EQ(ckg->wal().next_seq(), seq_before);
}

TEST(StreamingCkgTest, RecoveryReplayMatchesUninterruptedRun) {
  InMemoryFileSystem fs;
  uint64_t uninterrupted_digest = 0;
  {
    std::unique_ptr<StreamingCkg> ckg;
    ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal",
                                   SmallSegments(), nullptr, &ckg)
                    .ok());
    for (const GraphUpdate& update : UpdateScript()) {
      ASSERT_TRUE(ApplyUpdate(*ckg, update).ok());
    }
    uninterrupted_digest = ckg->StateDigest();
  }
  std::unique_ptr<StreamingCkg> recovered;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs, "wal", SmallSegments(),
                                 nullptr, &recovered)
                  .ok());
  EXPECT_EQ(recovered->stats().replayed, 12);
  EXPECT_EQ(recovered->StateDigest(), uninterrupted_digest);
}

TEST(StreamingCkgTest, RepairIsIdenticalAcrossThreadCounts) {
  InMemoryFileSystem fs_serial;
  InMemoryFileSystem fs_pooled;
  ThreadPool pool(3);
  std::unique_ptr<StreamingCkg> serial;
  std::unique_ptr<StreamingCkg> pooled;
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs_serial, "wal",
                                 SmallSegments(), nullptr, &serial)
                  .ok());
  ASSERT_TRUE(StreamingCkg::Open(TinyDataset(), &fs_pooled, "wal",
                                 SmallSegments(), &pool, &pooled)
                  .ok());
  for (const GraphUpdate& update : UpdateScript()) {
    ASSERT_TRUE(ApplyUpdate(*serial, update).ok());
    ASSERT_TRUE(ApplyUpdate(*pooled, update).ok());
  }
  EXPECT_EQ(serial->StateDigest(), pooled->StateDigest());
}

// The flagship robustness sweep: arm a fault at every single io operation
// the streaming phase performs (both clean-failure and torn-write modes),
// crash there, recover, and require the recovered state to be byte-identical
// (StateDigest) to an uninterrupted run over the acked prefix — then finish
// the remaining updates and require byte-identity with the full clean run.
TEST(StreamingCkgTest, KillAtEveryWalOpSweepRecoversByteIdentical) {
  const Dataset data = TinyDataset();
  const std::vector<GraphUpdate> script = UpdateScript();

  // Reference digests from a clean run: digest_after[i] = state after the
  // first i accepted appends.
  std::vector<uint64_t> digest_after;
  int64_t total_stream_ops = 0;
  {
    InMemoryFileSystem mem;
    FaultInjectingFileSystem fs(&mem);
    std::unique_ptr<StreamingCkg> ckg;
    ASSERT_TRUE(StreamingCkg::Open(data, &fs, "wal", SmallSegments(),
                                   nullptr, &ckg)
                    .ok());
    fs.ResetOpCount();
    digest_after.push_back(ckg->StateDigest());
    for (const GraphUpdate& update : script) {
      ASSERT_TRUE(ApplyUpdate(*ckg, update).ok());
      digest_after.push_back(ckg->StateDigest());
    }
    total_stream_ops = fs.op_count();
  }
  // 12 appends at 2 ops each plus segment-seal renames.
  ASSERT_GE(total_stream_ops, 24);

  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    for (int64_t kill_at = 1; kill_at <= total_stream_ops; ++kill_at) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " kill_at=" + std::to_string(kill_at));
      InMemoryFileSystem mem;
      FaultInjectingFileSystem fs(&mem);
      size_t acked = 0;
      {
        std::unique_ptr<StreamingCkg> ckg;
        ASSERT_TRUE(StreamingCkg::Open(data, &fs, "wal", SmallSegments(),
                                       nullptr, &ckg)
                        .ok());
        fs.FailFrom(kill_at, mode);
        for (const GraphUpdate& update : script) {
          if (!ApplyUpdate(*ckg, update).ok()) break;  // the "crash"
          ++acked;
        }
        EXPECT_EQ(fs.faults_fired() > 0, acked < script.size());
      }
      fs.Disarm();

      // Recovery must reconstruct exactly the acked prefix...
      std::unique_ptr<StreamingCkg> recovered;
      ASSERT_TRUE(StreamingCkg::Open(data, &fs, "wal", SmallSegments(),
                                     nullptr, &recovered)
                      .ok());
      EXPECT_EQ(static_cast<size_t>(recovered->stats().replayed), acked);
      EXPECT_EQ(recovered->StateDigest(), digest_after[acked]);

      // ...and streaming must be able to pick up where it left off.
      for (size_t k = acked; k < script.size(); ++k) {
        ASSERT_TRUE(ApplyUpdate(*recovered, script[k]).ok());
      }
      EXPECT_EQ(recovered->StateDigest(), digest_after.back());
    }
  }
}

}  // namespace
}  // namespace kucnet
