#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/kucnet.h"
#include "data/synthetic.h"
#include "serve/fleet/shard_fault.h"
#include "serve/fleet/shard_health.h"
#include "serve/fleet/shard_router.h"
#include "stream/streaming_ckg.h"
#include "tensor/serialize.h"
#include "util/clock.h"
#include "util/fault.h"
#include "util/fs.h"

namespace kucnet {
namespace {

Dataset TinyDataset(uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 6;
  cfg.kg_noise = 0.05;
  cfg.entity_entity_edges_per_topic = 5;
  Rng rng(seed);
  const RawData raw = GenerateSynthetic(cfg).raw;
  return TraditionalSplit(raw, 0.25, rng);
}

KucnetOptions SmallModelOptions(uint64_t seed = 13) {
  KucnetOptions opts;
  opts.hidden_dim = 8;
  opts.attention_dim = 3;
  opts.depth = 3;
  opts.sample_k = 8;
  opts.seed = seed;
  return opts;
}

/// Router options for deterministic single-threaded tests: synchronous
/// shards, a FakeClock everywhere, and waits that advance that clock.
ShardRouterOptions SyncFleetOptions(FakeClock* clock,
                                    ShardFaultInjector* shard_fault = nullptr,
                                    FaultInjector* stage_fault = nullptr) {
  ShardRouterOptions opts;
  opts.server.num_workers = 0;
  opts.clock = clock;
  opts.shard_fault = shard_fault;
  opts.stage_fault = stage_fault;
  opts.wait_micros = [clock](int64_t micros) { clock->AdvanceMicros(micros); };
  return opts;
}

/// Dataset + CKG + PPR + one identically-seeded model per shard + router.
/// All shard models share options and seed, so every shard's full tier is
/// bitwise identical — any shard's answer can be checked against one
/// reference forward pass.
struct FleetFixture {
  FleetFixture(int num_shards, ShardRouterOptions options)
      : dataset(TinyDataset()), ckg(dataset.BuildCkg()) {
    ppr = PprTable::Compute(ckg);
    std::vector<Kucnet*> raw;
    for (int s = 0; s < num_shards; ++s) {
      models.push_back(
          std::make_unique<Kucnet>(&dataset, &ckg, &ppr, SmallModelOptions()));
      raw.push_back(models.back().get());
    }
    router = std::make_unique<ShardRouter>(raw, &dataset, &ckg, &ppr,
                                           std::move(options));
  }

  FleetResponse Route(int64_t user, int64_t tenant = 0) {
    FleetRequest request;
    request.request.user = user;
    request.tenant = tenant;
    return router->Route(request);
  }

  Dataset dataset;
  Ckg ckg;
  PprTable ppr;
  std::vector<std::unique_ptr<Kucnet>> models;
  std::unique_ptr<ShardRouter> router;
};

void ExpectSameItems(const std::vector<ScoredItem>& a,
                     const std::vector<ScoredItem>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

// ---- Consistent-hash routing -------------------------------------------------

TEST(ShardRouterTest, RoutingIsDeterministicAndCoversAllShards) {
  FakeClock clock_a, clock_b;
  FleetFixture a(3, SyncFleetOptions(&clock_a));
  FleetFixture b(3, SyncFleetOptions(&clock_b));
  std::set<int> homes;
  for (int64_t user = 0; user < 1000; ++user) {
    const int home = a.router->ShardForUser(user);
    // Same config => same ring => same placement, across router instances.
    EXPECT_EQ(home, b.router->ShardForUser(user));
    homes.insert(home);
    const std::vector<int> prefs = a.router->PreferenceOrder(user);
    ASSERT_EQ(prefs.size(), 3u);
    EXPECT_EQ(prefs[0], home);  // home shard leads the failover order
    EXPECT_EQ(std::set<int>(prefs.begin(), prefs.end()).size(), 3u);
    EXPECT_EQ(prefs, b.router->PreferenceOrder(user));
  }
  // 1000 users on a 48-point ring: every shard owns a slice.
  EXPECT_EQ(homes.size(), 3u);
}

// ---- Healthy fleet -----------------------------------------------------------

TEST(ShardRouterTest, HealthyFleetServesFullTierOnPrimary) {
  FakeClock clock;
  FleetFixture fleet(3, SyncFleetOptions(&clock));

  // One reference server over an identically-seeded model: the oracle for
  // what any healthy shard's full tier must return.
  Kucnet reference(&fleet.dataset, &fleet.ckg, &fleet.ppr,
                   SmallModelOptions());
  RecServerOptions ref_options;
  ref_options.num_workers = 0;
  ref_options.clock = &clock;
  RecServer ref_server(&reference, &fleet.dataset, &fleet.ckg, &fleet.ppr,
                       ref_options);

  for (int64_t user = 0; user < fleet.dataset.num_users; ++user) {
    const FleetResponse got = fleet.Route(user);
    ASSERT_EQ(got.response.status, ResponseStatus::kOk);
    EXPECT_EQ(got.response.tier, ServeTier::kFull);
    EXPECT_FALSE(got.response.degraded);
    EXPECT_EQ(got.path, FleetPath::kPrimary);
    EXPECT_EQ(got.shard, fleet.router->ShardForUser(user));
    EXPECT_EQ(got.attempts, 1);
    EXPECT_EQ(got.retries, 0);
    EXPECT_TRUE(got.fleet_reason.empty());
    RecRequest ref_request;
    ref_request.user = user;
    ExpectSameItems(got.response.items,
                    ref_server.ServeSync(ref_request).items);
  }
  const FleetStats stats = fleet.router->stats();
  EXPECT_EQ(stats.submitted, fleet.dataset.num_users);
  EXPECT_EQ(stats.answered, fleet.dataset.num_users);
  EXPECT_EQ(stats.shard_answers, fleet.dataset.num_users);
  EXPECT_EQ(stats.fallback_answers, 0);
  EXPECT_EQ(stats.attempts, fleet.dataset.num_users);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.tier_count[static_cast<int>(ServeTier::kFull)],
            fleet.dataset.num_users);
  EXPECT_EQ(stats.path_count[static_cast<int>(FleetPath::kPrimary)],
            fleet.dataset.num_users);
  // The merged per-shard view must account for every request exactly once.
  EXPECT_EQ(stats.shards.completed, fleet.dataset.num_users);
}

// ---- Retries -----------------------------------------------------------------

TEST(ShardRouterTest, KilledPrimaryRetriesToSibling) {
  FakeClock clock;
  ShardFaultInjector faults;
  FleetFixture fleet(3, SyncFleetOptions(&clock, &faults));
  const int64_t user = 4;
  const std::vector<int> prefs = fleet.router->PreferenceOrder(user);
  faults.Kill(prefs[0]);

  const FleetResponse got = fleet.Route(user);
  ASSERT_EQ(got.response.status, ResponseStatus::kOk);
  EXPECT_EQ(got.response.tier, ServeTier::kFull);  // sibling is fully healthy
  EXPECT_EQ(got.path, FleetPath::kRetry);
  EXPECT_EQ(got.shard, prefs[1]);
  EXPECT_EQ(got.attempts, 2);
  EXPECT_EQ(got.retries, 1);
  EXPECT_NE(got.fleet_reason.find("down"), std::string::npos);
  EXPECT_GT(got.total_micros, 0);  // the retry backoff burned fleet time

  const FleetStats stats = fleet.router->stats();
  EXPECT_EQ(stats.shard_down_failures, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(faults.faults_fired(), 1);
}

TEST(ShardRouterTest, BackoffScheduleIsDeterministicAndExponential) {
  const auto run = [] {
    FakeClock clock;
    ShardFaultInjector faults;
    FleetFixture fleet(3, SyncFleetOptions(&clock, &faults));
    const std::vector<int> prefs = fleet.router->PreferenceOrder(9);
    faults.Kill(prefs[0]);
    faults.Kill(prefs[1]);  // force both retries; the third shard answers
    return fleet.Route(9);
  };
  const FleetResponse first = run();
  ASSERT_EQ(first.response.status, ResponseStatus::kOk);
  EXPECT_EQ(first.attempts, 3);
  EXPECT_EQ(first.retries, 2);
  // Defaults: base 1000us, multiplier 2 => waits of 1000+j1 and 2000+j2
  // with jitter in [0, 256). Everything on the FakeClock, so total latency
  // is exactly the backoff schedule.
  EXPECT_GE(first.total_micros, 3000);
  EXPECT_LT(first.total_micros, 3000 + 2 * 256);
  // Seeded jitter: an identical fleet replays the identical schedule.
  EXPECT_EQ(first.total_micros, run().total_micros);
}

// ---- Circuit breaker ---------------------------------------------------------

TEST(ShardRouterTest, BreakerOpensAfterThresholdAndRecoversViaProbe) {
  FakeClock clock;
  ShardFaultInjector faults;
  ShardRouterOptions options = SyncFleetOptions(&clock, &faults);
  options.breaker.failure_threshold = 3;
  options.breaker.open_cooldown_micros = 1'000'000;
  FleetFixture fleet(2, options);
  const int64_t user = 2;
  const std::vector<int> prefs = fleet.router->PreferenceOrder(user);
  const int home = prefs[0];
  faults.Kill(home);

  // Three failed attempts trip the home shard's breaker open; the sibling
  // answers each time.
  for (int i = 0; i < 3; ++i) {
    const FleetResponse got = fleet.Route(user);
    ASSERT_EQ(got.response.status, ResponseStatus::kOk);
    EXPECT_EQ(got.shard, prefs[1]);
  }
  EXPECT_EQ(fleet.router->shard_health(home), ShardHealth::kOpen);

  // While open the home shard is skipped without an attempt: the request
  // goes straight to the sibling on its first attempt.
  const FleetResponse while_open = fleet.Route(user);
  EXPECT_EQ(while_open.shard, prefs[1]);
  EXPECT_EQ(while_open.attempts, 1);
  EXPECT_EQ(while_open.path, FleetPath::kPrimary);
  EXPECT_NE(while_open.fleet_reason.find("breaker open"), std::string::npos);
  EXPECT_GT(fleet.router->stats().breaker_rejections, 0);
  EXPECT_EQ(faults.attempts(home), 3);  // no traffic reached it while open

  // Cooldown elapses and the shard comes back: the next request is admitted
  // as a half-open probe, succeeds, and closes the breaker.
  faults.Revive(home);
  clock.AdvanceMicros(1'000'000);
  const FleetResponse probe = fleet.Route(user);
  ASSERT_EQ(probe.response.status, ResponseStatus::kOk);
  EXPECT_EQ(probe.shard, home);
  EXPECT_EQ(fleet.router->shard_health(home), ShardHealth::kClosed);

  const FleetStats stats = fleet.router->stats();
  // closed -> open -> half-open -> closed.
  EXPECT_EQ(stats.breaker_transitions, 3);
  EXPECT_GE(stats.half_open_probes, 1);
}

// ---- Hedging -----------------------------------------------------------------

TEST(ShardRouterTest, StalledShardTriggersHedgeThatWins) {
  FakeClock clock;
  ShardFaultInjector faults;
  ShardRouterOptions options = SyncFleetOptions(&clock, &faults);
  options.hedging = true;
  options.hedge_latency_micros = 20'000;
  options.unhealthy_latency_micros = 20'000;
  FleetFixture fleet(3, options);
  const int64_t user = 11;
  const std::vector<int> prefs = fleet.router->PreferenceOrder(user);
  faults.Stall(prefs[0], 50'000);

  const FleetResponse got = fleet.Route(user);
  ASSERT_EQ(got.response.status, ResponseStatus::kOk);
  EXPECT_TRUE(got.hedged);
  EXPECT_TRUE(got.hedge_won);  // same tier, 0us beats 50'000us
  EXPECT_EQ(got.path, FleetPath::kHedge);
  EXPECT_EQ(got.shard, prefs[1]);
  EXPECT_EQ(got.attempts, 2);
  EXPECT_EQ(got.retries, 0);  // a hedge is not a retry

  const FleetStats stats = fleet.router->stats();
  EXPECT_EQ(stats.hedges, 1);
  EXPECT_EQ(stats.hedges_won, 1);
  EXPECT_EQ(stats.hedges_lost, 0);
  EXPECT_EQ(faults.stalls_fired(), 1);
  // The slow answer also counted against the stalling shard's health.
  EXPECT_EQ(stats.slow_attempt_failures, 1);
  EXPECT_EQ(fleet.router->shard_health(prefs[0]), ShardHealth::kClosed);
}

TEST(ShardRouterTest, FastPrimaryNeverHedges) {
  FakeClock clock;
  ShardRouterOptions options = SyncFleetOptions(&clock);
  options.hedging = true;
  FleetFixture fleet(3, options);
  const FleetResponse got = fleet.Route(11);
  EXPECT_FALSE(got.hedged);
  EXPECT_EQ(got.attempts, 1);
  EXPECT_EQ(fleet.router->stats().hedges, 0);
}

// ---- Fleet fallback ----------------------------------------------------------

TEST(ShardRouterTest, AllShardsDownFallsBackToPopularity) {
  FakeClock clock;
  ShardFaultInjector faults;
  FleetFixture fleet(3, SyncFleetOptions(&clock, &faults));
  for (int s = 0; s < 3; ++s) faults.Kill(s);

  const int64_t user = 6;
  const FleetResponse got = fleet.Route(user);
  ASSERT_EQ(got.response.status, ResponseStatus::kOk);
  EXPECT_EQ(got.path, FleetPath::kFallback);
  EXPECT_EQ(got.shard, -1);
  EXPECT_EQ(got.response.tier, ServeTier::kPopularity);
  EXPECT_TRUE(got.response.degraded);
  EXPECT_EQ(got.attempts, 3);  // 1 + max_retries, all refused
  ASSERT_FALSE(got.response.items.empty());

  // The fallback ranking is exactly training popularity (count desc, id
  // asc) minus the user's own training items.
  std::vector<int64_t> counts(fleet.dataset.num_items, 0);
  for (const auto& [u, item] : fleet.dataset.train) ++counts[item];
  const std::vector<std::vector<int64_t>> train_items =
      fleet.dataset.TrainItemsByUser();
  int64_t prev_count = counts[got.response.items[0].item];
  for (const ScoredItem& scored : got.response.items) {
    EXPECT_FALSE(std::binary_search(train_items[user].begin(),
                                    train_items[user].end(), scored.item));
    EXPECT_LE(counts[scored.item], prev_count);  // popularity-sorted
    prev_count = counts[scored.item];
    EXPECT_EQ(scored.score, static_cast<double>(counts[scored.item]));
  }

  // Keep routing until every breaker opens; the fleet still answers with
  // zero attempts per request.
  for (int i = 0; i < 10; ++i) fleet.Route(user);
  const FleetResponse after = fleet.Route(user);
  EXPECT_EQ(after.response.status, ResponseStatus::kOk);
  EXPECT_EQ(after.path, FleetPath::kFallback);
  EXPECT_EQ(after.attempts, 0);  // all breakers open: no attempt wasted
  EXPECT_EQ(fleet.router->stats().fallback_answers, 12);
}

// ---- Tenant quotas -----------------------------------------------------------

TEST(ShardRouterTest, TenantQuotaShedsAndWindowRollsOver) {
  FakeClock clock;
  ShardRouterOptions options = SyncFleetOptions(&clock);
  options.tenant.quota = 2;
  options.tenant.window_micros = 1'000;
  FleetFixture fleet(2, options);

  EXPECT_EQ(fleet.Route(1, /*tenant=*/7).response.status, ResponseStatus::kOk);
  EXPECT_EQ(fleet.Route(2, /*tenant=*/7).response.status, ResponseStatus::kOk);
  const FleetResponse shed = fleet.Route(3, /*tenant=*/7);
  EXPECT_EQ(shed.response.status, ResponseStatus::kOverloaded);
  EXPECT_EQ(shed.path, FleetPath::kQuotaShed);
  EXPECT_EQ(shed.attempts, 0);  // shed at admission: no shard touched
  EXPECT_NE(shed.fleet_reason.find("quota"), std::string::npos);

  // Quotas are per tenant: another tenant is unaffected.
  EXPECT_EQ(fleet.Route(3, /*tenant=*/8).response.status, ResponseStatus::kOk);

  // A new window re-admits the shed tenant.
  clock.AdvanceMicros(1'000);
  EXPECT_EQ(fleet.Route(3, /*tenant=*/7).response.status, ResponseStatus::kOk);

  const FleetStats stats = fleet.router->stats();
  EXPECT_EQ(stats.quota_shed, 1);
  EXPECT_EQ(stats.path_count[static_cast<int>(FleetPath::kQuotaShed)], 1);
  EXPECT_EQ(stats.submitted, 5);
  EXPECT_EQ(stats.answered, 4);
}

// ---- Rolling swap ------------------------------------------------------------

TEST(ShardRouterTest, RollingSwapServesThroughoutAndLoadsNewWeights) {
  FakeClock clock;
  ShardRouterOptions options = SyncFleetOptions(&clock);
  options.server.warm_cache_users = 4;
  FleetFixture fleet(2, options);

  // The v2 checkpoint: same architecture, different seed => different
  // weights, observably different scores.
  Kucnet v2(&fleet.dataset, &fleet.ckg, &fleet.ppr, SmallModelOptions(99));
  const std::string path = ::testing::TempDir() + "/fleet_swap_v2.ckpt";
  ASSERT_TRUE(TrySaveParameters(v2.Params(), path).ok());

  // Mid-swap traffic: while each shard drains, a request for a user homed
  // on it must be answered by the sibling.
  std::vector<std::string> phases;
  int64_t mid_swap_checks = 0;
  const int64_t home0_user = [&] {
    for (int64_t u = 0;; ++u) {
      if (fleet.router->ShardForUser(u) == 0) return u;
    }
  }();
  const int64_t home1_user = [&] {
    for (int64_t u = 0;; ++u) {
      if (fleet.router->ShardForUser(u) == 1) return u;
    }
  }();
  // Rebuild the router with a swap observer installed (the observer needs
  // the router, so configure via mutable options on a fresh fixture).
  ShardRouterOptions observed = SyncFleetOptions(&clock);
  observed.server.warm_cache_users = 4;
  observed.swap_observer = [&](int shard, const char* phase) {
    phases.push_back(std::to_string(shard) + ":" + phase);
    if (std::string(phase) == "draining") {
      const int64_t user = shard == 0 ? home0_user : home1_user;
      const FleetResponse mid = fleet.Route(user);
      EXPECT_EQ(mid.response.status, ResponseStatus::kOk);
      EXPECT_NE(mid.shard, shard);  // the draining shard is skipped
      ++mid_swap_checks;
    }
  };
  fleet.router = nullptr;  // tear down before re-wiring the same models
  std::vector<Kucnet*> raw;
  for (auto& m : fleet.models) raw.push_back(m.get());
  fleet.router = std::make_unique<ShardRouter>(raw, &fleet.dataset, &fleet.ckg,
                                               &fleet.ppr, observed);

  const Status swapped = fleet.router->RollingSwap(path);
  ASSERT_TRUE(swapped.ok()) << swapped.message();
  EXPECT_EQ(mid_swap_checks, 2);
  const std::vector<std::string> want = {"0:draining", "0:swapped",
                                         "0:readmitted", "1:draining",
                                         "1:swapped", "1:readmitted"};
  EXPECT_EQ(phases, want);
  EXPECT_FALSE(fleet.router->shard_draining(0));
  EXPECT_FALSE(fleet.router->shard_draining(1));

  const FleetStats stats = fleet.router->stats();
  EXPECT_EQ(stats.swaps, 2);
  EXPECT_EQ(stats.draining_skips, 2);
  // Each shard's cache was invalidated exactly once, then rewarmed.
  EXPECT_EQ(fleet.router->shard(0).cache().generation(), 1);
  EXPECT_EQ(fleet.router->shard(1).cache().generation(), 1);
  EXPECT_GE(stats.shards.cache_warmed, 2 * 4);  // construction + rewarm

  // Post-swap answers come from the v2 weights on every shard.
  RecServerOptions ref_options;
  ref_options.num_workers = 0;
  ref_options.clock = &clock;
  RecServer ref_server(&v2, &fleet.dataset, &fleet.ckg, &fleet.ppr,
                       ref_options);
  for (const int64_t user : {home0_user, home1_user}) {
    const FleetResponse got = fleet.Route(user);
    ASSERT_EQ(got.response.tier, ServeTier::kFull);
    RecRequest ref_request;
    ref_request.user = user;
    ExpectSameItems(got.response.items,
                    ref_server.ServeSync(ref_request).items);
  }
}

TEST(ShardRouterTest, RollingSwapRejectsBogusCheckpointAndStaysServing) {
  FakeClock clock;
  FleetFixture fleet(2, SyncFleetOptions(&clock));
  const Status status = fleet.router->RollingSwap("/nonexistent/ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(fleet.router->shard_draining(0));
  EXPECT_FALSE(fleet.router->shard_draining(1));
  EXPECT_EQ(fleet.router->stats().swaps, 0);
  EXPECT_EQ(fleet.Route(5).response.status, ResponseStatus::kOk);
}

// The cache-staleness regression the swap machinery exists to prevent: after
// a hot swap, a degraded request retried onto the shard must NOT be served
// scores the pre-swap model computed.
TEST(ShardRouterTest, RetriedRequestCannotReadPreSwapCacheEntry) {
  FakeClock clock;
  FaultInjector stage_faults;
  ShardRouterOptions options = SyncFleetOptions(&clock, nullptr, &stage_faults);
  options.warm_after_swap_users = 0;  // no rewarm: the stale entry would be
                                      // the only cached candidate
  FleetFixture fleet(2, options);
  const int64_t user = 3;
  const int home = fleet.router->ShardForUser(user);

  // Pre-swap: a full-tier answer deposits v1 scores in the home shard's
  // cache.
  const FleetResponse before = fleet.Route(user);
  ASSERT_EQ(before.response.tier, ServeTier::kFull);
  ASSERT_EQ(before.shard, home);
  const std::vector<ScoredItem> v1_items = before.response.items;
  ASSERT_GT(fleet.router->shard(home).cache().size(), 0u);

  // Hot-swap to different weights.
  Kucnet v2(&fleet.dataset, &fleet.ckg, &fleet.ppr, SmallModelOptions(99));
  const std::string path = ::testing::TempDir() + "/fleet_stale_v2.ckpt";
  ASSERT_TRUE(TrySaveParameters(v2.Params(), path).ok());
  ASSERT_TRUE(fleet.router->RollingSwap(path).ok());

  // Post-swap degraded request: the full tier fails (injected), so the
  // shard reaches its cached tier — where the v1 entry still physically
  // sits. The generation tag must reject it.
  stage_faults.Arm("ppr", 1);
  const FleetResponse after = fleet.Route(user);
  ASSERT_EQ(after.response.status, ResponseStatus::kOk);
  EXPECT_NE(after.response.tier, ServeTier::kCached);
  EXPECT_EQ(after.response.tier, ServeTier::kHeuristic);
  EXPECT_GE(fleet.router->shard(home).cache().generation_evictions(), 1);
}

// ---- Streaming invalidation --------------------------------------------------

// The streaming layer's bridge into the fleet: a graph update invalidates
// the touched users' cached scores on EVERY shard — retries and hedges can
// deposit a user's entries anywhere — and the stream keeps flowing while a
// shard drains for a rolling swap.
TEST(ShardRouterTest, StreamingUpdatesInvalidatePerUserAcrossShardsDuringSwap) {
  FakeClock clock;
  StreamingCkg* stream_ptr = nullptr;
  ShardRouterOptions options = SyncFleetOptions(&clock);
  options.server.warm_cache_users = 4;
  options.swap_observer = [&stream_ptr](int shard, const char* phase) {
    if (shard == 0 && std::string(phase) == "draining") {
      // An update lands mid-swap, while shard 0 is out of rotation.
      ASSERT_TRUE(stream_ptr->AppendInteraction(1, 2).ok());
    }
  };
  FleetFixture fleet(2, options);

  InMemoryFileSystem fs;
  std::unique_ptr<StreamingCkg> stream;
  ASSERT_TRUE(StreamingCkg::Open(fleet.dataset, &fs, "wal",
                                 StreamingCkgOptions(), nullptr, &stream)
                  .ok());
  stream_ptr = stream.get();
  std::vector<int64_t> last_touched;
  int64_t total_bumps = 0;
  stream->set_invalidation_hook([&](const std::vector<int64_t>& users) {
    last_touched = users;
    total_bumps += static_cast<int64_t>(users.size());
    fleet.router->InvalidateUsers(users);
  });

  // Pre-swap: one update bumps exactly the touched users, on both shards.
  ASSERT_TRUE(stream->AppendInteraction(0, 1).ok());
  ASSERT_FALSE(last_touched.empty());
  EXPECT_TRUE(
      std::binary_search(last_touched.begin(), last_touched.end(), 0));
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(fleet.router->shard(s).cache().user_invalidations(),
              total_bumps);
  }
  // Per-user invalidation moves the effective tag without touching the
  // global (model-swap) generation.
  EXPECT_EQ(fleet.router->shard(0).cache().generation(), 0);
  EXPECT_NE(fleet.router->shard(0).cache().generation(last_touched[0]), 0);

  // Rolling swap with the stream still flowing (see swap_observer above).
  Kucnet v2(&fleet.dataset, &fleet.ckg, &fleet.ppr, SmallModelOptions(99));
  const std::string path = ::testing::TempDir() + "/fleet_stream_v2.ckpt";
  ASSERT_TRUE(TrySaveParameters(v2.Params(), path).ok());
  const int64_t bumps_before_swap = total_bumps;
  ASSERT_TRUE(fleet.router->RollingSwap(path).ok());
  EXPECT_GT(total_bumps, bumps_before_swap);  // the mid-swap update fired
  for (int s = 0; s < 2; ++s) {
    // Every shard saw every bump — including the one that arrived while
    // shard 0 was draining — plus the swap's own global invalidation.
    EXPECT_EQ(fleet.router->shard(s).cache().user_invalidations(),
              total_bumps);
    EXPECT_EQ(fleet.router->shard(s).cache().generation(), 1);
  }
  // The fleet answers for a touched user after all of it.
  EXPECT_EQ(fleet.Route(1).response.status, ResponseStatus::kOk);
  EXPECT_EQ(stream->stats().applied, 2);
}

// The in-flight race the drain loop must close: a request that passed the
// draining check (or that a worker already popped off the queue) is still
// reading model parameters inside the forward pass while queue_depth() is
// already 0. The old drain loop polled only queue_depth(), so RollingSwap
// would hot-load new weights UNDER the executing request — a data race TSan
// flags and a correctness bug (scores from half-old, half-new weights).
// This test pins a request at its "forward" checkpoint with a one-shot
// stall, starts a swap on another thread, and asserts the swap cannot
// report the home shard "swapped" until the stalled request was released.
TEST(ShardRouterTest, RollingSwapWaitsForInFlightRequestNotJustQueue) {
  // Real clock, real worker threads: the TSan-relevant configuration.
  FaultInjector stage_faults;
  ShardRouterOptions options;
  options.server.num_workers = 1;
  options.server.default_deadline_micros = 60'000'000;
  options.stage_fault = &stage_faults;
  FleetFixture fleet(2, options);

  const int64_t user = 3;
  const int home = fleet.router->ShardForUser(user);

  // Same-weights checkpoint: the test is about the drain ordering, not the
  // scores.
  const std::string ckpt = ::testing::TempDir() + "/fleet_inflight.ckpt";
  ASSERT_TRUE(TrySaveParameters(fleet.models[0]->Params(), ckpt).ok());

  // One-shot stall: the first "forward" checkpoint (our routed request —
  // cache warming runs fault-free) parks the shard worker mid-forward,
  // after the queue already handed the job out.
  std::promise<void> entered_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> released{false};
  stage_faults.ArmStall("forward", 1, [&] {
    entered_promise.set_value();
    release.wait();
  });

  // The fixed drain must not let the home shard reach "swapped" while the
  // request is still parked inside the model.
  std::atomic<int64_t> home_swapped_after_release{0};
  ShardRouterOptions observed = options;
  observed.swap_observer = [&](int shard, const char* phase) {
    if (shard == home && std::string(phase) == "swapped") {
      EXPECT_TRUE(released.load()) << "swap overtook an in-flight request";
      ++home_swapped_after_release;
    }
  };
  fleet.router = nullptr;
  std::vector<Kucnet*> raw;
  for (auto& m : fleet.models) raw.push_back(m.get());
  fleet.router = std::make_unique<ShardRouter>(raw, &fleet.dataset, &fleet.ckg,
                                               &fleet.ppr, observed);

  FleetResponse routed;
  std::thread requester([&] { routed = fleet.Route(user); });
  entered_promise.get_future().wait();  // the request is now mid-forward

  Status swap_status;
  std::thread swapper(
      [&] { swap_status = fleet.router->RollingSwap(ckpt); });
  // Give a buggy drain ample real time to blow through queue_depth()==0 and
  // swap under the stalled request before we let it go.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  released.store(true);
  release_promise.set_value();

  requester.join();
  swapper.join();

  ASSERT_TRUE(swap_status.ok()) << swap_status.message();
  EXPECT_EQ(home_swapped_after_release.load(), 1);
  EXPECT_EQ(routed.response.status, ResponseStatus::kOk);
  EXPECT_EQ(routed.response.tier, ServeTier::kFull);
  EXPECT_EQ(routed.shard, home);
  EXPECT_EQ(fleet.router->stats().swaps, 2);
}

// ---- Asynchronous shards -----------------------------------------------------

TEST(ShardRouterTest, AsyncWorkersServeTheFleet) {
  // Real clock, real worker threads: the TSan-relevant configuration.
  ShardRouterOptions options;
  options.server.num_workers = 2;
  FleetFixture fleet(3, options);
  for (int64_t user = 0; user < 10; ++user) {
    const FleetResponse got = fleet.Route(user);
    EXPECT_EQ(got.response.status, ResponseStatus::kOk);
    EXPECT_FALSE(got.response.items.empty());
  }
  fleet.router->Shutdown();
  EXPECT_EQ(fleet.router->stats().answered, 10);
}

// ---- The acceptance sweep ----------------------------------------------------

// Every whole-shard fault x every target shard x every per-stage fault site,
// with a rolling swap in the middle of each scenario: the fleet must answer
// every single request, and the failure counters must reconcile exactly
// with what the injectors report.
TEST(ShardRouterTest, FaultSweepNeverLeavesARequestUnanswered) {
  Dataset dataset = TinyDataset();
  Ckg ckg = dataset.BuildCkg();
  PprTable ppr = PprTable::Compute(ckg);
  constexpr int kShards = 3;
  std::vector<std::unique_ptr<Kucnet>> models;
  std::vector<Kucnet*> raw;
  for (int s = 0; s < kShards; ++s) {
    models.push_back(
        std::make_unique<Kucnet>(&dataset, &ckg, &ppr, SmallModelOptions()));
    raw.push_back(models.back().get());
  }
  // The swap checkpoint reloads the same weights: the sweep exercises the
  // drain/invalidate/rewarm machinery without perturbing scores.
  const std::string ckpt = ::testing::TempDir() + "/fleet_sweep.ckpt";
  ASSERT_TRUE(TrySaveParameters(models[0]->Params(), ckpt).ok());

  const char* kShardFaults[] = {"kill", "stall", "flap"};
  const char* kStageSites[] = {"",          "ppr",       "subgraph",
                               "forward",   "cache",     "heuristic",
                               "popularity"};
  for (const char* shard_fault_kind : kShardFaults) {
    for (int target = 0; target < kShards; ++target) {
      for (const char* site : kStageSites) {
        SCOPED_TRACE(std::string(shard_fault_kind) + " shard " +
                     std::to_string(target) + " stage '" + site + "'");
        FakeClock clock;
        ShardFaultInjector shard_faults;
        FaultInjector stage_faults;
        ShardRouterOptions options =
            SyncFleetOptions(&clock, &shard_faults, &stage_faults);
        ShardRouter router(raw, &dataset, &ckg, &ppr, options);

        if (std::string(shard_fault_kind) == "kill") {
          shard_faults.Kill(target);
        } else if (std::string(shard_fault_kind) == "stall") {
          shard_faults.Stall(target, 10'000);
        } else {
          shard_faults.Flap(target, 1);  // down/up on alternating attempts
        }

        int64_t answered = 0;
        const auto route_users = [&](int64_t from, int64_t to) {
          for (int64_t user = from; user < to; ++user) {
            if (site[0] != '\0') stage_faults.Arm(site, 1);
            FleetRequest request;
            request.request.user = user;
            const FleetResponse got = router.Route(request);
            ASSERT_EQ(got.response.status, ResponseStatus::kOk);
            ASSERT_FALSE(got.response.items.empty());
            for (const ScoredItem& scored : got.response.items) {
              ASSERT_TRUE(std::isfinite(scored.score));
            }
            ++answered;
          }
        };
        route_users(0, 6);
        // Mid-scenario rolling swap: drain/reload/rewarm every shard while
        // the injected fault stays armed. Faults during the swap's own
        // warm-up are fine — warming is fault-free by design.
        ASSERT_TRUE(router.RollingSwap(ckpt).ok());
        route_users(6, 12);

        const FleetStats stats = router.stats();
        EXPECT_EQ(stats.answered, answered);
        EXPECT_EQ(stats.quota_shed, 0);
        EXPECT_EQ(stats.shard_answers + stats.fallback_answers, answered);
        // Attempt accounting: the router consulted the shard injector on
        // every attempt it made, and every "down" verdict is one recorded
        // shard_down failure.
        int64_t injector_attempts = 0;
        for (int s = 0; s < kShards; ++s) {
          injector_attempts += shard_faults.attempts(s);
        }
        EXPECT_EQ(stats.attempts, injector_attempts);
        EXPECT_EQ(stats.shard_down_failures, shard_faults.faults_fired());
        // Per-stage faults that fired inside shards surface in the merged
        // server stats.
        EXPECT_EQ(stats.shards.fault_events, stage_faults.faults_fired());
      }
    }
  }
}

}  // namespace
}  // namespace kucnet
