// Property tests for the ranking metrics: randomized rankings and test sets
// must satisfy the metric axioms for every (seed, list size, test size, N)
// combination in the sweep.

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"

namespace kucnet {
namespace {

struct Case {
  uint64_t seed;
  int64_t universe;
  int64_t test_size;
  int64_t n;
};

class MetricsPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    ranked_.resize(GetParam().universe);
    for (int64_t i = 0; i < GetParam().universe; ++i) ranked_[i] = i;
    rng.Shuffle(ranked_);
    for (const int64_t t :
         rng.SampleWithoutReplacement(GetParam().universe,
                                      GetParam().test_size)) {
      test_.insert(t);
    }
  }

  std::vector<int64_t> ranked_;
  std::unordered_set<int64_t> test_;
};

TEST_P(MetricsPropertyTest, BoundedInUnitInterval) {
  const double recall = RecallAtN(ranked_, test_, GetParam().n);
  const double ndcg = NdcgAtN(ranked_, test_, GetParam().n);
  EXPECT_GE(recall, 0.0);
  EXPECT_LE(recall, 1.0);
  EXPECT_GE(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0 + 1e-12);
}

TEST_P(MetricsPropertyTest, MonotoneInN) {
  double prev_recall = 0.0;
  for (int64_t n = 1; n <= GetParam().universe; n *= 2) {
    const double r = RecallAtN(ranked_, test_, n);
    EXPECT_GE(r, prev_recall - 1e-12);
    prev_recall = r;
  }
  // Full-list recall is 1 (every test item is somewhere in the ranking).
  EXPECT_NEAR(RecallAtN(ranked_, test_, GetParam().universe), 1.0, 1e-12);
}

TEST_P(MetricsPropertyTest, IdealRankingMaximizesBoth) {
  // Move all test items to the front: recall@|T| and ndcg@N become maximal.
  std::vector<int64_t> ideal;
  for (const int64_t t : test_) ideal.push_back(t);
  for (const int64_t r : ranked_) {
    if (!test_.count(r)) ideal.push_back(r);
  }
  EXPECT_NEAR(NdcgAtN(ideal, test_, GetParam().n), 1.0, 1e-12);
  const double best_recall = RecallAtN(ideal, test_, GetParam().n);
  EXPECT_GE(best_recall + 1e-12, RecallAtN(ranked_, test_, GetParam().n));
}

TEST_P(MetricsPropertyTest, SwappingAHitEarlierNeverHurtsNdcg) {
  // Find a hit after a miss and swap them: ndcg must not decrease.
  std::vector<int64_t> ranked = ranked_;
  for (size_t i = 1; i < ranked.size(); ++i) {
    if (test_.count(ranked[i]) && !test_.count(ranked[i - 1])) {
      const double before = NdcgAtN(ranked, test_, GetParam().n);
      std::swap(ranked[i], ranked[i - 1]);
      const double after = NdcgAtN(ranked, test_, GetParam().n);
      EXPECT_GE(after + 1e-12, before);
      break;
    }
  }
}

TEST_P(MetricsPropertyTest, TopNIndicesConsistentWithMetrics) {
  // Build scores that induce exactly the ranked_ order; TopNIndices must
  // reproduce its prefix.
  std::vector<double> scores(GetParam().universe);
  for (size_t rank = 0; rank < ranked_.size(); ++rank) {
    scores[ranked_[rank]] = static_cast<double>(ranked_.size() - rank);
  }
  const auto top = TopNIndices(scores, GetParam().n);
  const int64_t expect =
      std::min<int64_t>(GetParam().n, GetParam().universe);
  ASSERT_EQ(static_cast<int64_t>(top.size()), expect);
  for (int64_t i = 0; i < expect; ++i) {
    EXPECT_EQ(top[i], ranked_[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsPropertyTest,
    ::testing::Values(Case{1, 50, 5, 10}, Case{2, 50, 1, 20},
                      Case{3, 200, 30, 20}, Case{4, 10, 10, 5},
                      Case{5, 100, 2, 1}, Case{6, 500, 50, 20},
                      Case{7, 33, 7, 33}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_u" +
             std::to_string(info.param.universe) + "_t" +
             std::to_string(info.param.test_size) + "_n" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace kucnet
