// Property tests for the ranking metrics (randomized rankings and test sets
// must satisfy the metric axioms for every (seed, list size, test size, N)
// combination in the sweep) and for ServerStats::MergeFrom (the fleet's
// cross-shard aggregation must behave like saturating vector addition).

#include <algorithm>
#include <limits>
#include <unordered_set>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "serve/rec_server.h"
#include "util/rng.h"

namespace kucnet {
namespace {

struct Case {
  uint64_t seed;
  int64_t universe;
  int64_t test_size;
  int64_t n;
};

class MetricsPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    ranked_.resize(GetParam().universe);
    for (int64_t i = 0; i < GetParam().universe; ++i) ranked_[i] = i;
    rng.Shuffle(ranked_);
    for (const int64_t t :
         rng.SampleWithoutReplacement(GetParam().universe,
                                      GetParam().test_size)) {
      test_.insert(t);
    }
  }

  std::vector<int64_t> ranked_;
  std::unordered_set<int64_t> test_;
};

TEST_P(MetricsPropertyTest, BoundedInUnitInterval) {
  const double recall = RecallAtN(ranked_, test_, GetParam().n);
  const double ndcg = NdcgAtN(ranked_, test_, GetParam().n);
  EXPECT_GE(recall, 0.0);
  EXPECT_LE(recall, 1.0);
  EXPECT_GE(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0 + 1e-12);
}

TEST_P(MetricsPropertyTest, MonotoneInN) {
  double prev_recall = 0.0;
  for (int64_t n = 1; n <= GetParam().universe; n *= 2) {
    const double r = RecallAtN(ranked_, test_, n);
    EXPECT_GE(r, prev_recall - 1e-12);
    prev_recall = r;
  }
  // Full-list recall is 1 (every test item is somewhere in the ranking).
  EXPECT_NEAR(RecallAtN(ranked_, test_, GetParam().universe), 1.0, 1e-12);
}

TEST_P(MetricsPropertyTest, IdealRankingMaximizesBoth) {
  // Move all test items to the front: recall@|T| and ndcg@N become maximal.
  std::vector<int64_t> ideal;
  for (const int64_t t : test_) ideal.push_back(t);
  for (const int64_t r : ranked_) {
    if (!test_.count(r)) ideal.push_back(r);
  }
  EXPECT_NEAR(NdcgAtN(ideal, test_, GetParam().n), 1.0, 1e-12);
  const double best_recall = RecallAtN(ideal, test_, GetParam().n);
  EXPECT_GE(best_recall + 1e-12, RecallAtN(ranked_, test_, GetParam().n));
}

TEST_P(MetricsPropertyTest, SwappingAHitEarlierNeverHurtsNdcg) {
  // Find a hit after a miss and swap them: ndcg must not decrease.
  std::vector<int64_t> ranked = ranked_;
  for (size_t i = 1; i < ranked.size(); ++i) {
    if (test_.count(ranked[i]) && !test_.count(ranked[i - 1])) {
      const double before = NdcgAtN(ranked, test_, GetParam().n);
      std::swap(ranked[i], ranked[i - 1]);
      const double after = NdcgAtN(ranked, test_, GetParam().n);
      EXPECT_GE(after + 1e-12, before);
      break;
    }
  }
}

TEST_P(MetricsPropertyTest, TopNIndicesConsistentWithMetrics) {
  // Build scores that induce exactly the ranked_ order; TopNIndices must
  // reproduce its prefix.
  std::vector<double> scores(GetParam().universe);
  for (size_t rank = 0; rank < ranked_.size(); ++rank) {
    scores[ranked_[rank]] = static_cast<double>(ranked_.size() - rank);
  }
  const auto top = TopNIndices(scores, GetParam().n);
  const int64_t expect =
      std::min<int64_t>(GetParam().n, GetParam().universe);
  ASSERT_EQ(static_cast<int64_t>(top.size()), expect);
  for (int64_t i = 0; i < expect; ++i) {
    EXPECT_EQ(top[i], ranked_[i]);
  }
}

// ---- ServerStats::MergeFrom --------------------------------------------------

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

/// Random-but-reproducible ServerStats, including histogram contents.
ServerStats RandomStats(Rng& rng) {
  ServerStats stats;
  stats.submitted = rng.UniformInt(1000);
  stats.admitted = rng.UniformInt(1000);
  stats.shed = rng.UniformInt(100);
  stats.completed = rng.UniformInt(1000);
  stats.deadline_missed = rng.UniformInt(50);
  stats.fault_events = rng.UniformInt(50);
  stats.nonfinite_scores = rng.UniformInt(10);
  stats.cache_warmed = rng.UniformInt(100);
  stats.degraded = rng.UniformInt(500);
  stats.no_ppr_user = rng.UniformInt(20);
  stats.forward_batches = rng.UniformInt(200);
  stats.batched_requests = rng.UniformInt(1000);
  stats.multi_user_batches = rng.UniformInt(100);
  stats.deadline_preempted = rng.UniformInt(50);
  for (int t = 0; t < kNumServeTiers; ++t) {
    stats.tier_count[t] = rng.UniformInt(300);
  }
  const int64_t samples = rng.UniformInt(50);
  for (int64_t i = 0; i < samples; ++i) {
    stats.latency.Record(rng.UniformInt(1'000'000));
  }
  return stats;
}

TEST(ServerStatsMergeTest, EmptyIsTheIdentity) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    const ServerStats original = RandomStats(rng);
    // x + 0 == x ...
    ServerStats merged = original;
    merged.MergeFrom(ServerStats());
    EXPECT_EQ(merged.completed, original.completed);
    EXPECT_EQ(merged.latency.total, original.latency.total);
    EXPECT_EQ(merged.latency.sum, original.latency.sum);
    // ... and 0 + x == x.
    ServerStats from_empty;
    from_empty.MergeFrom(original);
    EXPECT_EQ(from_empty.submitted, original.submitted);
    EXPECT_EQ(from_empty.degraded, original.degraded);
    for (int t = 0; t < kNumServeTiers; ++t) {
      EXPECT_EQ(from_empty.tier_count[t], original.tier_count[t]);
    }
    EXPECT_EQ(from_empty.latency.counts, original.latency.counts);
  }
}

TEST(ServerStatsMergeTest, MergeIsComponentwiseAdditionAndCommutes) {
  Rng rng(78);
  for (int round = 0; round < 20; ++round) {
    const ServerStats a = RandomStats(rng);
    const ServerStats b = RandomStats(rng);
    ServerStats ab = a;
    ab.MergeFrom(b);
    ServerStats ba = b;
    ba.MergeFrom(a);
    EXPECT_EQ(ab.submitted, a.submitted + b.submitted);
    EXPECT_EQ(ab.completed, a.completed + b.completed);
    EXPECT_EQ(ab.cache_warmed, a.cache_warmed + b.cache_warmed);
    EXPECT_EQ(ab.no_ppr_user, a.no_ppr_user + b.no_ppr_user);
    EXPECT_EQ(ab.forward_batches, a.forward_batches + b.forward_batches);
    EXPECT_EQ(ab.batched_requests, a.batched_requests + b.batched_requests);
    EXPECT_EQ(ab.multi_user_batches,
              a.multi_user_batches + b.multi_user_batches);
    EXPECT_EQ(ab.deadline_preempted,
              a.deadline_preempted + b.deadline_preempted);
    for (int t = 0; t < kNumServeTiers; ++t) {
      EXPECT_EQ(ab.tier_count[t], a.tier_count[t] + b.tier_count[t]);
    }
    EXPECT_EQ(ab.latency.total, a.latency.total + b.latency.total);
    EXPECT_EQ(ab.latency.sum, a.latency.sum + b.latency.sum);
    // Commutativity: the fleet may merge shards in any order.
    EXPECT_EQ(ab.submitted, ba.submitted);
    EXPECT_EQ(ab.latency.counts, ba.latency.counts);
    EXPECT_EQ(ab.latency.sum, ba.latency.sum);
  }
}

TEST(ServerStatsMergeTest, SaturatesInsteadOfWrapping) {
  // A counter already at the int64 ceiling must stay there, not wrap
  // negative, no matter how many shards merge into it.
  ServerStats saturated;
  saturated.submitted = kInt64Max;
  saturated.completed = kInt64Max - 1;
  saturated.tier_count[0] = kInt64Max;
  saturated.batched_requests = kInt64Max;
  Rng rng(79);
  for (int round = 0; round < 5; ++round) {
    saturated.MergeFrom(RandomStats(rng));
  }
  EXPECT_EQ(saturated.submitted, kInt64Max);
  EXPECT_GE(saturated.completed, kInt64Max - 1);
  EXPECT_EQ(saturated.tier_count[0], kInt64Max);
  EXPECT_EQ(saturated.batched_requests, kInt64Max);
}

TEST(ServerStatsMergeTest, SaturatedHistogramBucketsStaySaturated) {
  ServerStats a;
  // Saturate one finite bucket and the +Inf bucket directly.
  a.latency.counts[3] = kInt64Max;
  a.latency.counts.back() = kInt64Max;
  a.latency.total = kInt64Max;
  ServerStats b;
  b.latency.Record(7);                  // lands in a finite bucket
  b.latency.Record(kInt64Max / 2);      // lands in the +Inf bucket
  const int64_t inf_before = b.latency.counts.back();
  EXPECT_GE(inf_before, 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.latency.counts[3], kInt64Max);
  EXPECT_EQ(a.latency.counts.back(), kInt64Max);
  EXPECT_EQ(a.latency.total, kInt64Max);
  // The mirror merge adds the saturated buckets into the small ones.
  ServerStats c;
  c.latency.Record(7);
  ServerStats d;
  d.latency.counts.back() = kInt64Max;
  c.latency.MergeFrom(d.latency);
  EXPECT_EQ(c.latency.counts.back(), kInt64Max);
}

TEST(ServerStatsMergeTest, PlusInfBucketCountsAddAcrossShards) {
  // Three shards each saw some pathological >2^38us requests: the merged
  // +Inf bucket is their exact sum and the percentile surfaces it.
  ServerStats merged;
  for (int shard = 0; shard < 3; ++shard) {
    ServerStats s;
    for (int i = 0; i <= shard; ++i) s.latency.Record(kInt64Max / 4);
    merged.MergeFrom(s);
  }
  EXPECT_EQ(merged.latency.counts.back(), 1 + 2 + 3);
  EXPECT_EQ(merged.latency.total, 6);
  EXPECT_EQ(merged.latency.PercentileUpperBound(1.0), kInt64Max);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsPropertyTest,
    ::testing::Values(Case{1, 50, 5, 10}, Case{2, 50, 1, 20},
                      Case{3, 200, 30, 20}, Case{4, 10, 10, 5},
                      Case{5, 100, 2, 1}, Case{6, 500, 50, 20},
                      Case{7, 33, 7, 33}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_u" +
             std::to_string(info.param.universe) + "_t" +
             std::to_string(info.param.test_size) + "_n" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace kucnet
