// Tests for the observability subsystem (src/obs/): metric determinism and
// bucket-edge behavior, saturating merges, span trees under FakeClock,
// exporter output, concurrent registry/recorder stress (run under TSan via
// the `obs` ctest label), and the instrumentation's no-perturbation
// guarantees on the serving pipeline.

#include <atomic>
#include <cctype>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/kucnet.h"
#include "data/synthetic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/rec_server.h"
#include "serve/score_cache.h"
#include "store/container.h"
#include "store/web_scale.h"
#include "util/fs.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace kucnet {
namespace {

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

/// Every test runs with a clean process-wide registry/recorder and restores
/// the disabled-by-default state, so tests cannot observe each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::DefaultRegistry().ResetForTest();
    obs::TraceRecorder::Default().Clear();
  }
  void TearDown() override {
    obs::SetClockForTest(nullptr);
    obs::SetEnabled(false);
    obs::DefaultRegistry().ResetForTest();
    obs::TraceRecorder::Default().Clear();
  }
};

// ---- Minimal JSON syntax checker ---------------------------------------------
// Just enough of RFC 8259 to assert "this exports as valid JSON" without a
// third-party parser.

bool SkipJsonValue(const std::string& s, size_t* i);

void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() && (s[*i] == ' ' || s[*i] == '\n' || s[*i] == '\t' ||
                           s[*i] == '\r')) {
    ++*i;
  }
}

bool SkipJsonString(const std::string& s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  while (*i < s.size() && s[*i] != '"') {
    if (s[*i] == '\\') ++*i;
    ++*i;
  }
  if (*i >= s.size()) return false;
  ++*i;  // closing quote
  return true;
}

bool SkipJsonValue(const std::string& s, size_t* i) {
  SkipWs(s, i);
  if (*i >= s.size()) return false;
  const char c = s[*i];
  if (c == '"') return SkipJsonString(s, i);
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++*i;
    SkipWs(s, i);
    if (*i < s.size() && s[*i] == close) {
      ++*i;
      return true;
    }
    for (;;) {
      if (c == '{') {
        SkipWs(s, i);
        if (!SkipJsonString(s, i)) return false;
        SkipWs(s, i);
        if (*i >= s.size() || s[*i] != ':') return false;
        ++*i;
      }
      if (!SkipJsonValue(s, i)) return false;
      SkipWs(s, i);
      if (*i >= s.size()) return false;
      if (s[*i] == ',') {
        ++*i;
        continue;
      }
      if (s[*i] == close) {
        ++*i;
        return true;
      }
      return false;
    }
  }
  // number / true / false / null
  const size_t start = *i;
  while (*i < s.size() && (std::isalnum(static_cast<unsigned char>(s[*i])) ||
                           s[*i] == '-' || s[*i] == '+' || s[*i] == '.')) {
    ++*i;
  }
  return *i > start;
}

bool IsValidJson(const std::string& s) {
  size_t i = 0;
  if (!SkipJsonValue(s, &i)) return false;
  SkipWs(s, &i);
  return i == s.size();
}

[[maybe_unused]] int CountOccurrences(const std::string& text,
                                      const std::string& needle) {
  int count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---- SaturatingAdd / HistogramData -------------------------------------------

TEST(SaturatingAddTest, SaturatesAtBothExtremes) {
  EXPECT_EQ(obs::SaturatingAdd(1, 2), 3);
  EXPECT_EQ(obs::SaturatingAdd(kInt64Max, 1), kInt64Max);
  EXPECT_EQ(obs::SaturatingAdd(kInt64Max, kInt64Max), kInt64Max);
  EXPECT_EQ(obs::SaturatingAdd(std::numeric_limits<int64_t>::min(), -1),
            std::numeric_limits<int64_t>::min());
}

TEST(HistogramDataTest, BucketEdgesAreInclusiveUpperBounds) {
  obs::HistogramData h{std::vector<int64_t>{10, 20}};
  ASSERT_EQ(h.counts.size(), 3u);  // two finite buckets + the +Inf bucket
  EXPECT_EQ(h.BucketOf(-5), 0);
  EXPECT_EQ(h.BucketOf(10), 0);   // exactly at the first bound
  EXPECT_EQ(h.BucketOf(11), 1);
  EXPECT_EQ(h.BucketOf(20), 1);   // exactly at the last finite bound
  EXPECT_EQ(h.BucketOf(21), 2);   // past every finite bound: +Inf bucket
  h.Record(10);
  h.Record(11);
  h.Record(20);
  h.Record(21);
  EXPECT_EQ(h.counts[0], 1);
  EXPECT_EQ(h.counts[1], 2);
  EXPECT_EQ(h.counts[2], 1);
  EXPECT_EQ(h.total, 4);
  EXPECT_EQ(h.sum, 62);
  EXPECT_EQ(h.PercentileUpperBound(0.5), 20);
  // The top quantile lands in the +Inf bucket: reported as INT64_MAX, never
  // a made-up finite bound.
  EXPECT_EQ(h.PercentileUpperBound(1.0), kInt64Max);
}

TEST(HistogramDataTest, DefaultLayoutMatchesPowerOfTwoLatencyBuckets) {
  obs::HistogramData h;
  h.Record(0);
  h.Record(3);     // bucket upper bound 3
  h.Record(1000);  // bucket [512, 1023]
  EXPECT_EQ(h.total, 3);
  EXPECT_EQ(h.PercentileUpperBound(0.5), 3);
  EXPECT_EQ(h.PercentileUpperBound(0.99), 1023);
  // Negative durations (clock skew) land in bucket 0, not out of range.
  h.Record(-7);
  EXPECT_EQ(h.counts[0], 2);
}

TEST(HistogramDataTest, CountsSaturateInsteadOfWrapping) {
  obs::HistogramData h{std::vector<int64_t>{10}};
  h.counts[0] = kInt64Max;
  h.total = kInt64Max;
  h.sum = kInt64Max - 1;
  h.Record(5);
  EXPECT_EQ(h.counts[0], kInt64Max);
  EXPECT_EQ(h.total, kInt64Max);
  EXPECT_EQ(h.sum, kInt64Max);
}

TEST(HistogramDataTest, MergeFromIsSaturating) {
  obs::HistogramData a{std::vector<int64_t>{10}};
  obs::HistogramData b{std::vector<int64_t>{10}};
  a.counts[1] = kInt64Max - 1;
  a.total = kInt64Max - 1;
  b.counts[1] = 5;
  b.total = 5;
  b.sum = 50;
  a.MergeFrom(b);
  EXPECT_EQ(a.counts[1], kInt64Max);
  EXPECT_EQ(a.total, kInt64Max);
  EXPECT_EQ(a.sum, 50);
}

TEST(HistogramDataTest, LinearLayout) {
  obs::HistogramData h = obs::HistogramData::Linear(100, 100, 3);
  EXPECT_EQ(h.bounds, (std::vector<int64_t>{100, 200, 300}));
  h.Record(150);
  h.Record(301);
  EXPECT_EQ(h.counts[1], 1);
  EXPECT_EQ(h.counts[3], 1);
}

// ---- ServerStats merging -----------------------------------------------------

TEST(ServerStatsTest, MergeFromAddsAndSaturates) {
  ServerStats a;
  a.submitted = kInt64Max - 2;
  a.admitted = 10;
  a.tier_count[0] = 4;
  a.latency.Record(100);
  ServerStats b;
  b.submitted = 5;
  b.admitted = 7;
  b.shed = 1;
  b.tier_count[0] = 2;
  b.tier_count[3] = 9;
  b.latency.Record(200);
  b.latency.Record(300);
  a.MergeFrom(b);
  EXPECT_EQ(a.submitted, kInt64Max);  // saturates, does not wrap negative
  EXPECT_EQ(a.admitted, 17);
  EXPECT_EQ(a.shed, 1);
  EXPECT_EQ(a.tier_count[0], 6);
  EXPECT_EQ(a.tier_count[3], 9);
  EXPECT_EQ(a.latency.total, 3);
  EXPECT_EQ(a.latency.sum, 600);
}

// ---- Registry metrics --------------------------------------------------------

TEST_F(ObsTest, CountersAggregateAcrossShardsAndReset) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("test.counter");
  counter.Add(3);
  counter.Add();
  EXPECT_EQ(counter.Value(), 4);
  // Same name, same metric: references stay stable across lookups.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &counter);
  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0);
}

TEST_F(ObsTest, GaugesAndCallbackGauges) {
  obs::MetricsRegistry registry;
  registry.GetGauge("depth").Set(12);
  registry.GetGauge("depth").Add(-2);
  std::atomic<int64_t> level{7};
  registry.RegisterCallbackGauge("sampled", [&] { return level.load(); });
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.gauges.at("depth"), 10);
  EXPECT_EQ(snapshot.gauges.at("sampled"), 7);
  level.store(9);
  EXPECT_EQ(registry.Snapshot().gauges.at("sampled"), 9);
}

TEST_F(ObsTest, ConcurrentHistogramSnapshotsMatchValueType) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.GetHistogram(
      "lat", obs::HistogramData{std::vector<int64_t>{10, 20}});
  h.Record(10);
  h.Record(15);
  h.Record(99);
  const obs::HistogramData data = h.Snapshot();
  EXPECT_EQ(data.counts, (std::vector<int64_t>{1, 1, 1}));
  EXPECT_EQ(data.total, 3);
  EXPECT_EQ(data.sum, 124);
  EXPECT_EQ(data.PercentileUpperBound(0.5), 20);
}

#if KUCNET_OBS

TEST_F(ObsTest, MacrosRecordOnlyWhenEnabled) {
  obs::SetEnabled(false);
  KUC_OBS_COUNT("obs_test.gated", 1);
  // Disabled macros must not even create the metric.
  EXPECT_EQ(obs::DefaultRegistry().Snapshot().counters.count("obs_test.gated"),
            0u);
  obs::SetEnabled(true);
  KUC_OBS_COUNT("obs_test.gated", 2);
  KUC_OBS_GAUGE_SET("obs_test.gauge", 5);
  KUC_OBS_HISTOGRAM("obs_test.hist", 42);
  obs::Count("obs_test.dynamic", 3);
  const obs::MetricsSnapshot snapshot = obs::DefaultRegistry().Snapshot();
  EXPECT_EQ(snapshot.counters.at("obs_test.gated"), 2);
  EXPECT_EQ(snapshot.gauges.at("obs_test.gauge"), 5);
  EXPECT_EQ(snapshot.histograms.at("obs_test.hist").total, 1);
  EXPECT_EQ(snapshot.counters.at("obs_test.dynamic"), 3);
  obs::SetEnabled(false);
  obs::Count("obs_test.dynamic", 3);  // gated: no further effect
  EXPECT_EQ(obs::DefaultRegistry().Snapshot().counters.at("obs_test.dynamic"),
            3);
}

#endif  // KUCNET_OBS

#if KUCNET_OBS

TEST_F(ObsTest, ContainerLoadSetsStoreGaugesAndRecordsSpans) {
  WebScaleConfig config;
  config.num_users = 8;
  config.num_items = 5;
  config.num_entities = 4;
  config.num_kg_relations = 2;
  config.interactions_per_user = 3;
  config.num_kg_triplets = 12;

  InMemoryFileSystem fs;
  CompactCkg written;
  ASSERT_TRUE(
      GenerateWebScaleContainer(fs, "/obs/g.kucstor", config, &written).ok());
  CompactCkg loaded;
  StoreLoadStats stats;
  ASSERT_TRUE(LoadCompactCkg(fs, "/obs/g.kucstor", StoreLoadOptions(),
                             &loaded, &stats)
                  .ok());

  const obs::MetricsSnapshot snapshot = obs::DefaultRegistry().Snapshot();
  ASSERT_EQ(snapshot.gauges.count("store.bytes_resident"), 1u);
  EXPECT_EQ(snapshot.gauges.at("store.bytes_resident"),
            loaded.bytes_resident());
  EXPECT_EQ(snapshot.gauges.at("store.edges"), loaded.num_edges());
  // The in-memory filesystem emulates the mapping with a heap copy, so the
  // mmap-hit gauge reports a miss.
  EXPECT_EQ(snapshot.gauges.at("store.mmap_hit"), 0);

  // Save and load are both wrapped in trace spans.
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Default().Collect();
  bool saw_save = false, saw_load = false;
  for (const obs::TraceEvent& event : events) {
    if (std::strcmp(event.name, "store.container_save") == 0) saw_save = true;
    if (std::strcmp(event.name, "store.container_load") == 0) saw_load = true;
  }
  EXPECT_TRUE(saw_save);
  EXPECT_TRUE(saw_load);
}

TEST_F(ObsTest, StoreMmapHitGaugeReportsKernelMappings) {
  WebScaleConfig config;
  config.num_users = 4;
  config.num_items = 3;
  config.num_entities = 2;
  config.num_kg_relations = 1;
  config.interactions_per_user = 2;
  config.num_kg_triplets = 5;

  FileSystem& real = DefaultFileSystem();
  const std::string path = ::testing::TempDir() + "/obs_store.kucstor";
  ASSERT_TRUE(GenerateWebScaleContainer(real, path, config).ok());
  CompactCkg loaded;
  ASSERT_TRUE(
      LoadCompactCkg(real, path, StoreLoadOptions(), &loaded, nullptr).ok());
  EXPECT_EQ(obs::DefaultRegistry().Snapshot().gauges.at("store.mmap_hit"), 1);

  // A full (non-mmap) load resets the gauge: it reports the *last* load.
  StoreLoadOptions full_read;
  full_read.use_mmap = false;
  ASSERT_TRUE(LoadCompactCkg(real, path, full_read, &loaded, nullptr).ok());
  EXPECT_EQ(obs::DefaultRegistry().Snapshot().gauges.at("store.mmap_hit"), 0);
  ASSERT_TRUE(real.Remove(path).ok());
}

#endif  // KUCNET_OBS

TEST_F(ObsTest, DefaultRegistryExposesThreadPoolGauges) {
  const obs::MetricsSnapshot snapshot = obs::DefaultRegistry().Snapshot();
  ASSERT_EQ(snapshot.gauges.count("threadpool.queue_depth"), 1u);
  ASSERT_EQ(snapshot.gauges.count("threadpool.tasks_submitted"), 1u);
  EXPECT_GE(snapshot.gauges.at("threadpool.queue_depth"), 0);
  const int64_t before = snapshot.gauges.at("threadpool.tasks_submitted");
  ParallelFor(GlobalPool(), 64, [](int64_t) {});
  EXPECT_GE(obs::DefaultRegistry().Snapshot().gauges.at(
                "threadpool.tasks_submitted"),
            before);
}

// ---- Concurrency stress (TSan target) ----------------------------------------

TEST_F(ObsTest, ConcurrentWritersAndSnapshottersAreConsistent) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 20'000;
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("stress.counter");
  obs::Histogram& histogram = registry.GetHistogram("stress.hist");
  std::atomic<bool> stop{false};
  // A reader thread snapshots continuously while writers hammer the shards;
  // every intermediate snapshot must be internally consistent (total ==
  // bucket sum) even though it races with the adds.
  std::thread reader([&] {
    while (!stop.load()) {
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      const auto it = snapshot.histograms.find("stress.hist");
      if (it != snapshot.histograms.end()) {
        int64_t bucket_sum = 0;
        for (const int64_t c : it->second.counts) bucket_sum += c;
        EXPECT_EQ(bucket_sum, it->second.total);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, &counter, &histogram, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter.Add(1);
        histogram.Record(t * 100 + i % 7);
        // Mixed-name traffic exercises the registry lock too.
        registry.GetCounter(i % 2 == 0 ? "stress.even" : "stress.odd").Add(1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIterations);
  EXPECT_EQ(histogram.Snapshot().total, int64_t{kThreads} * kIterations);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("stress.even") +
                snapshot.counters.at("stress.odd"),
            int64_t{kThreads} * kIterations);
}

#if KUCNET_OBS

TEST_F(ObsTest, ConcurrentSpansLandInPerThreadBuffers) {
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 500;
  obs::TraceRecorder::Default().SetCapacityPerThread(8192);
  obs::TraceRecorder::Default().Clear();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::ScopedSpan outer("stress.outer");
        obs::ScopedSpan inner("stress.inner");
      }
      // Collect from inside a worker while other threads still record.
      (void)obs::TraceRecorder::Default().Collect();
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Default().Collect();
  EXPECT_EQ(static_cast<int>(events.size()), kThreads * kSpansPerThread * 2);
  EXPECT_EQ(obs::TraceRecorder::Default().dropped(), 0);
}

// ---- Span trees under FakeClock ----------------------------------------------

TEST_F(ObsTest, SpanTreeIsDeterministicUnderFakeClock) {
  FakeClock clock(100);
  obs::SetClockForTest(&clock);
  obs::TraceRecorder::Default().Clear();
  {
    obs::ScopedSpan outer("outer");
    clock.AdvanceMicros(5);
    {
      obs::ScopedSpan inner("inner");
      clock.AdvanceMicros(3);
    }
    clock.AdvanceMicros(2);
  }
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Default().Collect();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer (t=100) precedes inner (t=105).
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].start_micros, 100);
  EXPECT_EQ(events[0].dur_micros, 10);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].start_micros, 105);
  EXPECT_EQ(events[1].dur_micros, 3);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The child nests inside the parent's interval: a well-formed tree.
  EXPECT_GE(events[1].start_micros, events[0].start_micros);
  EXPECT_LE(events[1].start_micros + events[1].dur_micros,
            events[0].start_micros + events[0].dur_micros);
}

TEST_F(ObsTest, RingBufferOverwritesOldestAndCountsDrops) {
  FakeClock clock;
  clock.set_auto_advance_micros(1);
  obs::SetClockForTest(&clock);
  obs::TraceRecorder::Default().SetCapacityPerThread(2);
  obs::TraceRecorder::Default().Clear();
  { obs::ScopedSpan a("first"); }
  { obs::ScopedSpan b("second"); }
  { obs::ScopedSpan c("third"); }
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Default().Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "second");
  EXPECT_STREQ(events[1].name, "third");
  EXPECT_EQ(obs::TraceRecorder::Default().dropped(), 1);
  obs::TraceRecorder::Default().SetCapacityPerThread(8192);
  obs::TraceRecorder::Default().Clear();
}

#endif  // KUCNET_OBS

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  obs::SetEnabled(false);
  obs::TraceRecorder::Default().Clear();
  { KUC_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(obs::TraceRecorder::Default().Collect().empty());
}

// ---- Exporters ---------------------------------------------------------------

TEST_F(ObsTest, PrometheusTextIsExactUnderDeterministicInput) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.b").Add(3);
  registry.GetGauge("queue").Set(-2);
  obs::Histogram& h = registry.GetHistogram(
      "lat.us", obs::HistogramData{std::vector<int64_t>{1, 2}});
  h.Record(0);
  h.Record(2);
  h.Record(5);
  const std::string text = obs::ToPrometheusText(registry.Snapshot());
  EXPECT_EQ(text,
            "# TYPE kucnet_a_b_total counter\n"
            "kucnet_a_b_total 3\n"
            "# TYPE kucnet_queue gauge\n"
            "kucnet_queue -2\n"
            "# TYPE kucnet_lat_us histogram\n"
            "kucnet_lat_us_bucket{le=\"1\"} 1\n"
            "kucnet_lat_us_bucket{le=\"2\"} 2\n"
            "kucnet_lat_us_bucket{le=\"+Inf\"} 3\n"
            "kucnet_lat_us_sum 7\n"
            "kucnet_lat_us_count 3\n");
}

TEST_F(ObsTest, ChromeTraceJsonIsValidAndCarriesSpanFields) {
  obs::TraceEvent event;
  event.name = "stage \"x\"\n";  // exercises string escaping
  event.start_micros = 50;
  event.dur_micros = 4;
  const std::string json = obs::ToChromeTraceJson({event});
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":50"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  EXPECT_NE(json.find("stage \\\"x\\\"\\n"), std::string::npos);
}

// ---- End-to-end: one served request ------------------------------------------

Dataset ObsTinyDataset() {
  SyntheticConfig cfg;
  cfg.seed = 42;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 8;
  cfg.entities_per_topic = 5;
  cfg.num_shared_entities = 6;
  cfg.kg_noise = 0.05;
  cfg.entity_entity_edges_per_topic = 5;
  Rng rng(cfg.seed);
  const RawData raw = GenerateSynthetic(cfg).raw;
  return TraditionalSplit(raw, 0.25, rng);
}

KucnetOptions ObsSmallModelOptions() {
  KucnetOptions opts;
  opts.hidden_dim = 8;
  opts.attention_dim = 3;
  opts.depth = 3;
  opts.sample_k = 8;
  return opts;
}

struct ObsServeFixture {
  ObsServeFixture() : dataset(ObsTinyDataset()), ckg(dataset.BuildCkg()) {
    ppr = PprTable::Compute(ckg);
    model = std::make_unique<Kucnet>(&dataset, &ckg, &ppr,
                                     ObsSmallModelOptions());
    RecServerOptions opts;
    opts.num_workers = 0;  // ServeSync: strictly deterministic
    server =
        std::make_unique<RecServer>(model.get(), &dataset, &ckg, &ppr, opts);
  }
  Dataset dataset;
  Ckg ckg;
  PprTable ppr;
  std::unique_ptr<Kucnet> model;
  std::unique_ptr<RecServer> server;
};

#if KUCNET_OBS

TEST_F(ObsTest, ServeRequestTraceHasOneSpanPerPipelineStage) {
  ObsServeFixture f;
  // Only the request under test should be in the trace — not the fixture's
  // PPR preprocessing.
  obs::TraceRecorder::Default().Clear();
  obs::DefaultRegistry().ResetForTest();
  const RecResponse response = f.server->ServeSync({0});
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.tier, ServeTier::kFull);

  const std::string json =
      obs::ToChromeTraceJson(obs::TraceRecorder::Default().Collect());
  EXPECT_TRUE(IsValidJson(json));
  // One span per pipeline stage of a full-tier request.
  EXPECT_EQ(CountOccurrences(json, "\"serve.request\""), 1);
  EXPECT_EQ(CountOccurrences(json, "\"serve.full\""), 1);
  EXPECT_EQ(CountOccurrences(json, "\"kucnet.forward\""), 1);
  EXPECT_EQ(CountOccurrences(json, "\"compgraph.build\""), 1);
  // One message-passing span per layer.
  EXPECT_EQ(CountOccurrences(json, "\"kucnet.layer\""),
            static_cast<int>(ObsSmallModelOptions().depth));
  // Fallback tiers never ran, so they must not appear.
  EXPECT_EQ(CountOccurrences(json, "\"serve.cache\""), 0);
  EXPECT_EQ(CountOccurrences(json, "\"serve.heuristic\""), 0);
  EXPECT_EQ(CountOccurrences(json, "\"serve.popularity\""), 0);

  const obs::MetricsSnapshot snapshot = obs::DefaultRegistry().Snapshot();
  EXPECT_EQ(snapshot.counters.at("serve.submitted"), 1);
  EXPECT_EQ(snapshot.counters.at("serve.admitted"), 1);
  EXPECT_EQ(snapshot.counters.at("serve.completed"), 1);
  EXPECT_EQ(snapshot.counters.at("serve.tier.full"), 1);
  EXPECT_EQ(snapshot.histograms.at("serve.latency_micros").total, 1);
}

TEST_F(ObsTest, ScoreCacheCountersReconcileWithMetrics) {
  obs::DefaultRegistry().ResetForTest();
  FakeClock clock;
  ScoreCacheOptions opts;
  opts.capacity = 2;
  opts.max_age_micros = 1000;
  ScoreCache cache(opts, &clock);
  std::vector<double> out;
  cache.Put(1, {1.0});
  cache.Put(2, {2.0});
  EXPECT_TRUE(cache.Get(1, &out));   // hit
  cache.Put(3, {3.0});               // evicts 2
  EXPECT_FALSE(cache.Get(2, &out));  // miss (evicted)
  clock.AdvanceMicros(2000);
  EXPECT_FALSE(cache.Get(1, &out));  // miss (stale, dropped)
  EXPECT_FALSE(cache.Get(9, &out));  // miss (never present)
  const obs::MetricsSnapshot snapshot = obs::DefaultRegistry().Snapshot();
  // The cache's own counters and the registry metrics are two views of the
  // same events: they must reconcile exactly.
  EXPECT_EQ(snapshot.counters.at("serve.cache.hits"), cache.hits());
  EXPECT_EQ(snapshot.counters.at("serve.cache.misses"), cache.misses());
  EXPECT_EQ(snapshot.counters.at("serve.cache.evictions"), 1);
  EXPECT_EQ(snapshot.counters.at("serve.cache.stale_evictions"), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 3);
}

#endif  // KUCNET_OBS

TEST_F(ObsTest, ModelOutputsBitIdenticalWithObsOnAndOff) {
  ObsServeFixture f;
  obs::SetEnabled(false);
  const std::vector<double> off = f.model->Forward(0).item_scores;
  obs::SetEnabled(true);
  const std::vector<double> on = f.model->Forward(0).item_scores;
  ASSERT_EQ(off.size(), on.size());
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace kucnet
