#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "testing/oracle.h"

namespace kucnet {
namespace {

TEST(MetricsTest, RecallHandComputed) {
  const std::vector<int64_t> ranked = {5, 3, 9, 1};
  const std::unordered_set<int64_t> test = {3, 7, 1};
  // Top-2 hits {3}: 1/3. Top-4 hits {3, 1}: 2/3.
  EXPECT_NEAR(RecallAtN(ranked, test, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(RecallAtN(ranked, test, 4), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(RecallAtN(ranked, test, 100), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, RecallEdgeCases) {
  EXPECT_EQ(RecallAtN({}, {1, 2}, 5), 0.0);
  EXPECT_EQ(RecallAtN({1, 2}, {}, 5), 0.0);
  EXPECT_EQ(RecallAtN({1, 2}, {1, 2}, 2), 1.0);
}

TEST(MetricsTest, NdcgHandComputed) {
  // ranked = [a, b, c], test = {b}: DCG = 1/log2(3); ideal = 1/log2(2).
  const std::vector<int64_t> ranked = {10, 20, 30};
  const std::unordered_set<int64_t> test = {20};
  const double expected = (1.0 / std::log2(3.0)) / (1.0 / std::log2(2.0));
  EXPECT_NEAR(NdcgAtN(ranked, test, 3), expected, 1e-12);
}

TEST(MetricsTest, NdcgPerfectRankingIsOne) {
  const std::vector<int64_t> ranked = {1, 2, 3, 4};
  const std::unordered_set<int64_t> test = {1, 2};
  EXPECT_NEAR(NdcgAtN(ranked, test, 4), 1.0, 1e-12);
}

TEST(MetricsTest, NdcgRewardsEarlierHits) {
  const std::unordered_set<int64_t> test = {7};
  const double early = NdcgAtN({7, 1, 2}, test, 3);
  const double late = NdcgAtN({1, 2, 7}, test, 3);
  EXPECT_GT(early, late);
  EXPECT_GT(late, 0.0);
}

TEST(MetricsTest, NdcgIdealTruncatesAtN) {
  // |T| = 5 but N = 2: ideal uses only two terms.
  const std::unordered_set<int64_t> test = {1, 2, 3, 4, 5};
  EXPECT_NEAR(NdcgAtN({1, 2}, test, 2), 1.0, 1e-12);
}

TEST(MetricsTest, MonotoneInN) {
  const std::vector<int64_t> ranked = {4, 8, 15, 16, 23, 42};
  const std::unordered_set<int64_t> test = {15, 42, 99};
  double prev_recall = -1.0;
  for (int64_t n = 1; n <= 6; ++n) {
    const double r = RecallAtN(ranked, test, n);
    EXPECT_GE(r, prev_recall);
    prev_recall = r;
  }
}

TEST(MetricsTest, TopNIndicesOrdersAndMasks) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.9, 0.2};
  auto top = TopNIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // tie with 3, lower index wins
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
  std::vector<bool> mask = {false, true, false, false, false};
  auto masked = TopNIndices(scores, 3, &mask);
  EXPECT_EQ(masked[0], 3);
  // n larger than candidates.
  auto all = TopNIndices(scores, 100);
  EXPECT_EQ(all.size(), 5u);
}

TEST(MetricsTest, TopNIndicesSurvivesNanScores) {
  // Regression: the old comparator `scores[a] > scores[b]` is not a strict
  // weak ordering when NaN is present (NaN > x and x > NaN are both false,
  // yet NaN is not equivalent to every x), which is undefined behavior in
  // std::partial_sort. The total order must instead sink every non-finite
  // score below all finite ones, ties by index, on any NaN/Inf mixture.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> scores;
  for (int i = 0; i < 64; ++i) {
    scores.push_back(i % 3 == 0 ? nan : static_cast<double>(i % 7));
  }
  const auto top = TopNIndices(scores, 10);
  ASSERT_EQ(top.size(), 10u);
  for (const int64_t idx : top) {
    EXPECT_TRUE(std::isfinite(scores[idx])) << "NaN leaked into top-10";
  }
  // Descending with index tie-break, and identical to the brute-force sort.
  for (size_t k = 1; k < top.size(); ++k) {
    EXPECT_TRUE(scores[top[k - 1]] > scores[top[k]] ||
                (scores[top[k - 1]] == scores[top[k]] && top[k - 1] < top[k]));
  }
  EXPECT_EQ(top, testing::OracleTopN(scores, 10));
}

TEST(MetricsTest, TopNIndicesSinksInfinitiesBelowFinite) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores = {inf, 0.25, -inf, nan, 0.75};
  // Non-finite (even +Inf — it cannot be a trustworthy score) ranks below
  // every finite value; among non-finite, lower index first.
  EXPECT_EQ(TopNIndices(scores, 5), (std::vector<int64_t>{4, 1, 0, 2, 3}));
  EXPECT_EQ(TopNIndices(scores, 2), (std::vector<int64_t>{4, 1}));
}

TEST(MetricsTest, AllNanScoresDegradeToIndexOrder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores(6, nan);
  EXPECT_EQ(TopNIndices(scores, 4), (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(MetricsTest, ShortCandidatePoolKeepsTestSetDenominator) {
  // The new-item split's global mask can leave fewer candidates than N.
  // Pinned semantics: recall's denominator stays |T| and ndcg's ideal stays
  // min(|T|, N) terms — a truncated list genuinely misses items, so neither
  // metric is re-normalized to the reachable pool.
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6, 0.5};
  std::vector<bool> mask = {false, false, true, true, true};
  const auto ranked = TopNIndices(scores, 4, &mask);  // only 2 candidates
  ASSERT_EQ(ranked, (std::vector<int64_t>{0, 1}));
  const std::unordered_set<int64_t> test = {0, 1, 2};
  // Both ranked items hit, but item 2 is unreachable: recall = 2/3 < 1.
  EXPECT_NEAR(RecallAtN(ranked, test, 4), 2.0 / 3.0, 1e-12);
  // DCG = 1/log2(2) + 1/log2(3); ideal = three terms (min(|T|, N) = 3).
  const double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  const double ideal = dcg + 1.0 / std::log2(4.0);
  EXPECT_NEAR(NdcgAtN(ranked, test, 4), dcg / ideal, 1e-12);
  // And both match the definitional oracles exactly.
  EXPECT_EQ(RecallAtN(ranked, test, 4), testing::OracleRecallAtN(ranked, test, 4));
  EXPECT_NEAR(NdcgAtN(ranked, test, 4), testing::OracleNdcgAtN(ranked, test, 4),
              1e-15);
}

// A ranker that scores item i as -i: ranks items in id order.
class IdOrderRanker : public Ranker {
 public:
  explicit IdOrderRanker(int64_t num_items) : num_items_(num_items) {}
  std::vector<double> ScoreItems(int64_t) const override {
    std::vector<double> s(num_items_);
    for (int64_t i = 0; i < num_items_; ++i) s[i] = -static_cast<double>(i);
    return s;
  }

 private:
  int64_t num_items_;
};

// A ranker that knows the test set (oracle): perfect metrics.
class OracleRanker : public Ranker {
 public:
  OracleRanker(const Dataset& d) : d_(d), test_(d.TestItemsByUser()) {}
  std::vector<double> ScoreItems(int64_t user) const override {
    std::vector<double> s(d_.num_items, 0.0);
    for (const int64_t i : test_[user]) s[i] = 1.0;
    return s;
  }

 private:
  const Dataset& d_;
  std::vector<std::vector<int64_t>> test_;
};

Dataset SmallDataset() {
  SyntheticConfig cfg;
  cfg.seed = 77;
  cfg.num_users = 30;
  cfg.num_items = 50;
  cfg.num_topics = 5;
  cfg.interactions_per_user = 8;
  Rng rng(1);
  return TraditionalSplit(GenerateSynthetic(cfg).raw, 0.25, rng);
}

TEST(EvaluatorTest, OracleGetsPerfectScores) {
  Dataset d = SmallDataset();
  OracleRanker oracle(d);
  EvalResult r = EvaluateRanking(oracle, d);
  EXPECT_NEAR(r.recall, 1.0, 1e-12);
  EXPECT_NEAR(r.ndcg, 1.0, 1e-12);
  EXPECT_EQ(r.num_users, static_cast<int64_t>(d.TestUsers().size()));
}

TEST(EvaluatorTest, SerialMatchesParallel) {
  Dataset d = SmallDataset();
  IdOrderRanker ranker(d.num_items);
  EvalOptions serial_opts;
  serial_opts.parallel = false;
  EvalOptions parallel_opts;
  parallel_opts.parallel = true;
  EvalResult a = EvaluateRanking(ranker, d, serial_opts);
  EvalResult b = EvaluateRanking(ranker, d, parallel_opts);
  EXPECT_NEAR(a.recall, b.recall, 1e-12);
  EXPECT_NEAR(a.ndcg, b.ndcg, 1e-12);
}

TEST(EvaluatorTest, TrainingPositivesAreMasked) {
  // A ranker that puts all its score on training positives would cheat; the
  // evaluator must exclude them so its recall is 0.
  // Many items so that chance-level recall@20 is small.
  SyntheticConfig cfg;
  cfg.seed = 78;
  cfg.num_users = 30;
  cfg.num_items = 600;
  cfg.num_topics = 5;
  cfg.interactions_per_user = 10;
  Rng rng(2);
  Dataset d = TraditionalSplit(GenerateSynthetic(cfg).raw, 0.25, rng);
  class TrainOracle : public Ranker {
   public:
    explicit TrainOracle(const Dataset& d)
        : d_(d), train_(d.TrainItemsByUser()) {}
    std::vector<double> ScoreItems(int64_t user) const override {
      std::vector<double> s(d_.num_items, 0.0);
      for (const int64_t i : train_[user]) s[i] = 1.0;
      return s;
    }
    const Dataset& d_;
    std::vector<std::vector<int64_t>> train_;
  };
  TrainOracle cheat(d);
  EvalResult r = EvaluateRanking(cheat, d);
  // All mass was on masked items; remaining ranking is arbitrary ties over
  // zero-score items, so recall should be near chance (20/600), far below 1.
  EXPECT_LT(r.recall, 0.3);
}

TEST(EvaluatorTest, NewItemSplitMatchesBruteForceOracle) {
  // New-item protocol: the global mask hides every trained item from every
  // user, so the candidate pool is just the held-out items — routinely
  // smaller than top_n. The evaluator must agree with a brute-force replay
  // (full sort + definitional metrics) user by user, including those short
  // ranked lists.
  SyntheticConfig cfg;
  cfg.seed = 99;
  cfg.num_users = 25;
  cfg.num_items = 60;
  cfg.num_topics = 4;
  cfg.interactions_per_user = 6;
  Rng rng(3);
  const Dataset d = NewItemSplit(GenerateSynthetic(cfg).raw, 0.15, rng);
  ASSERT_EQ(d.kind, SplitKind::kNewItem);
  const IdOrderRanker ranker(d.num_items);

  EvalOptions opts;
  opts.parallel = false;
  opts.top_n = 20;
  const EvalResult result = EvaluateRanking(ranker, d, opts);

  std::vector<bool> global_mask(d.num_items, false);
  for (const auto& [u, i] : d.train) global_mask[i] = true;
  // The held-out pool must actually be shorter than top_n for this test to
  // exercise the short-list path.
  int64_t candidates = 0;
  for (const bool masked : global_mask) candidates += masked ? 0 : 1;
  ASSERT_LT(candidates, opts.top_n);

  const auto train_by_user = d.TrainItemsByUser();
  const auto test_by_user = d.TestItemsByUser();
  double recall_sum = 0.0, ndcg_sum = 0.0;
  const auto test_users = d.TestUsers();
  for (const int64_t user : test_users) {
    const auto scores = ranker.ScoreItems(user);
    std::vector<bool> mask = global_mask;
    for (const int64_t item : train_by_user[user]) mask[item] = true;
    const auto ranked = testing::OracleTopN(scores, opts.top_n, &mask);
    const std::unordered_set<int64_t> test_set(test_by_user[user].begin(),
                                               test_by_user[user].end());
    recall_sum += testing::OracleRecallAtN(ranked, test_set, opts.top_n);
    ndcg_sum += testing::OracleNdcgAtN(ranked, test_set, opts.top_n);
  }
  ASSERT_FALSE(test_users.empty());
  EXPECT_NEAR(result.recall,
              recall_sum / static_cast<double>(test_users.size()), 1e-12);
  EXPECT_NEAR(result.ndcg, ndcg_sum / static_cast<double>(test_users.size()),
              1e-12);
}

TEST(EvaluatorTest, ToStringFormat) {
  EvalResult r;
  r.recall = 0.12345;
  r.ndcg = 0.0567;
  r.num_users = 42;
  const std::string s = ToString(r);
  EXPECT_NE(s.find("recall=0.1235"), std::string::npos);  // fixed, 4 digits
  EXPECT_NE(s.find("42 users"), std::string::npos);
}

}  // namespace
}  // namespace kucnet
