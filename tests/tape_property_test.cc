// Property test for the autograd engine: randomly composed computation
// graphs (random ops, shapes, and sharing patterns) must pass central
// finite-difference gradient checks for every parameter.

#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "util/rng.h"

namespace kucnet {
namespace {

class RandomGraphGradTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphGradTest, RandomCompositionMatchesFiniteDifferences) {
  Rng rng(GetParam());
  const int64_t rows = 2 + rng.UniformInt(4);
  const int64_t cols = 2 + rng.UniformInt(4);

  // Parameters: two same-shape matrices, a projection, and an embedding.
  Parameter a("a", Matrix::RandomNormal(rows, cols, 0.5, rng));
  Parameter b("b", Matrix::RandomNormal(rows, cols, 0.5, rng));
  Parameter w("w", Matrix::GlorotUniform(cols, cols, rng));
  Parameter emb("emb", Matrix::RandomNormal(6, cols, 0.5, rng));

  // A reproducible random program over the tape ops. Each step transforms
  // the running value x (rows x cols); ops are chosen by the seed.
  const uint64_t op_seed = rng.Next64();
  auto fn = [&, rows, cols, op_seed](Tape& t) {
    Rng ops(op_seed);
    Var x = t.Param(&a);
    Var y = t.Param(&b);
    const int steps = 3 + static_cast<int>(ops.UniformInt(4));
    for (int s = 0; s < steps; ++s) {
      switch (ops.UniformInt(9)) {
        case 0: x = t.Add(x, y); break;
        case 1: x = t.Sub(x, y); break;
        case 2: x = t.Hadamard(x, y); break;
        case 3: x = t.Tanh(x); break;
        case 4: x = t.Sigmoid(x); break;
        case 5: x = t.ScalarMul(x, 0.7); break;
        case 6: x = t.MatMul(x, t.Param(&w)); break;
        case 7: {
          // Gather a few embedding rows and fold them in via segment-sum.
          std::vector<int64_t> idx, seg;
          for (int64_t r = 0; r < rows; ++r) {
            idx.push_back(ops.UniformInt(6));
            idx.push_back(ops.UniformInt(6));
            seg.push_back(r);
            seg.push_back(r);
          }
          Var g = t.GatherParam(&emb, idx);
          x = t.Add(x, t.SegmentSum(g, seg, rows));
          break;
        }
        default: {
          Var scale = t.Sigmoid(t.RowDot(x, y));
          x = t.RowScale(x, scale);
          break;
        }
      }
    }
    return t.Sum(t.Softplus(x));
  };

  const auto result =
      CheckGradients({&a, &b, &w, &emb}, fn, 1e-6, 1e-4, /*max_entries=*/50);
  EXPECT_TRUE(result.ok) << "seed " << GetParam()
                         << " max_rel_err=" << result.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGradTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace kucnet
