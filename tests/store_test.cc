// The web-scale data plane (src/store/): CompactCkg ≡ Ckg structural and
// algorithmic equivalence, 32-bit id overflow policy, KUCSTOR1 container
// roundtrips across every load path, a whole-file corruption sweep (every
// flipped byte either fails with file:line:cause or is provably harmless
// padding), and crash sweeps killing save/load at every single IO op.

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/ckg.h"
#include "ppr/ppr.h"
#include "store/compact_ckg.h"
#include "store/container.h"
#include "store/web_scale.h"
#include "util/fs.h"
#include "util/serial.h"
#include "util/status.h"

namespace kucnet {
namespace {

/// A small fixed configuration with real structure: Zipf-skewed popularity,
/// isolated entities, duplicate interactions likely.
WebScaleConfig TinyConfig() {
  WebScaleConfig config;
  config.name = "store-test";
  config.seed = 41;
  config.num_users = 12;
  config.num_items = 9;
  config.num_entities = 7;
  config.num_kg_relations = 3;
  config.interactions_per_user = 4;
  config.num_kg_triplets = 30;
  return config;
}

/// Builds the int64 oracle from the exact inputs the generator streams.
Ckg BuildOracle(const WebScaleConfig& config) {
  std::vector<std::array<int64_t, 2>> interactions;
  std::vector<std::array<int64_t, 3>> kg;
  MaterializeWebScaleInputs(config, &interactions, &kg);
  return Ckg::Build(config.num_users, config.num_items, config.num_kg_nodes(),
                    config.num_kg_relations, interactions, kg);
}

/// Full structural comparison; returns a description of the first
/// difference, or "" when identical.
template <typename A, typename B>
std::string DescribeGraphDiff(const A& a, const B& b) {
  if (a.num_users() != b.num_users() || a.num_items() != b.num_items() ||
      a.num_kg_nodes() != b.num_kg_nodes() ||
      a.num_kg_relations() != b.num_kg_relations() ||
      a.num_edges() != b.num_edges()) {
    return "scalar sizes differ";
  }
  for (int64_t v = 0; v < a.num_nodes(); ++v) {
    if (a.OutDegree(v) != b.OutDegree(v)) return "degree differs";
    const auto a_rels = a.OutRelations(v);
    const auto a_dsts = a.OutNeighbors(v);
    const auto b_rels = b.OutRelations(v);
    const auto b_dsts = b.OutNeighbors(v);
    for (size_t k = 0; k < a_rels.size(); ++k) {
      if (static_cast<int64_t>(a_rels[k]) != static_cast<int64_t>(b_rels[k]) ||
          static_cast<int64_t>(a_dsts[k]) != static_cast<int64_t>(b_dsts[k])) {
        return "adjacency row differs";
      }
    }
  }
  return "";
}

// ---- CompactCkg ≡ Ckg --------------------------------------------------------

TEST(CompactCkgTest, MatchesInt64BuildOnIdenticalInputs) {
  const WebScaleConfig config = TinyConfig();
  const Ckg oracle = BuildOracle(config);
  CompactCkg compact;
  ASSERT_TRUE(TryGenerateWebScaleGraph(config, &compact).ok());
  EXPECT_EQ(DescribeGraphDiff(oracle, compact), "");
  EXPECT_TRUE(compact.ValidateTopology().ok());

  // The shared id/relation conventions.
  EXPECT_EQ(compact.num_relations(), oracle.num_relations());
  EXPECT_EQ(compact.self_loop_relation(), oracle.self_loop_relation());
  for (int64_t r = 0; r < oracle.num_relations(); ++r) {
    EXPECT_EQ(compact.InverseRelation(r), oracle.InverseRelation(r));
  }
  for (int64_t u = 0; u < config.num_users; ++u) {
    EXPECT_EQ(compact.ItemsOfUser(u), oracle.ItemsOfUser(u));
  }
}

TEST(CompactCkgTest, PprForwardPushIsBitwiseIdenticalAcrossRepresentations) {
  const WebScaleConfig config = TinyConfig();
  const Ckg oracle = BuildOracle(config);
  CompactCkg compact;
  ASSERT_TRUE(TryGenerateWebScaleGraph(config, &compact).ok());
  for (int64_t source = 0; source < oracle.num_nodes(); ++source) {
    const auto a = PprForwardPush(oracle, source);
    const auto b = PprForwardPush(compact, source);
    ASSERT_EQ(a.size(), b.size()) << "source " << source;
    for (const auto& [node, value] : a) {
      const auto it = b.find(node);
      ASSERT_NE(it, b.end()) << "source " << source << " node " << node;
      // Same push transcript over equal adjacency: exact equality, not
      // within-epsilon.
      EXPECT_EQ(it->second, value) << "source " << source << " node " << node;
    }
  }
}

TEST(CompactCkgTest, CompactFootprintIsWellUnderHalfOfInt64Layout) {
  const WebScaleConfig config = TinyConfig();
  CompactCkg compact;
  ASSERT_TRUE(TryGenerateWebScaleGraph(config, &compact).ok());
  const int64_t int64_bytes =
      (compact.num_nodes() + 1) * 8 + compact.num_edges() * 16;
  EXPECT_LE(compact.bytes_resident() * 100, int64_bytes * 40)
      << "bytes/edge must stay <= 40% of the int64 CSR layout";
}

// ---- Overflow policy ---------------------------------------------------------

TEST(CompactCkgTest, RelationOverflowIsRecoverableStatus) {
  CompactCkg out;
  const Status st =
      CompactCkg::TryBuild(1, 1, 1, /*num_kg_relations=*/40'000, {}, {}, {},
                           &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overflow 16-bit"), std::string::npos)
      << st.message();
}

TEST(CompactCkgTest, NodeOverflowIsRecoverableStatusBeforeAllocation) {
  CompactCkg out;
  // 5e9 nodes would be a 20 GB row-pointer array; the overflow check must
  // fire before any allocation is attempted.
  const Status st = CompactCkg::TryBuild(5'000'000'000, 1, 1, 1, {}, {}, {},
                                         &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overflow 32-bit"), std::string::npos)
      << st.message();
}

TEST(CompactCkgTest, OutOfRangeEdgeIsRecoverableStatus) {
  CompactCkg out;
  const std::vector<std::array<int64_t, 2>> bad_inter = {{0, 99}};
  const Status st = CompactCkg::TryBuild(2, 3, 3, 1, bad_inter, {}, {}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("out of range"), std::string::npos)
      << st.message();
}

// Same edge *count* on both passes but different content: without pass-2
// re-validation this would index the row cursors out of range (or run a
// row's writes into its neighbor's) — silent arena corruption instead of a
// recoverable Status.
TEST(CompactCkgTest, ContentDivergentSecondPassIsARecoverableStatus) {
  // Case 1: pass 2 routes the edges to a different (valid) source whose
  // pass-1 row is empty, overflowing that row's cursor.
  CompactCkg out;
  int pass = 0;
  Status st = CompactCkg::TryAssemble(
      2, 1, 1, 1,
      [&pass](auto&& sink) {
        ++pass;
        const int64_t src = pass == 1 ? 0 : 2;
        sink(src, 0, 1);
        sink(src, 0, 1);
      },
      &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not deterministic"), std::string::npos)
      << st.message();

  // Case 2: pass 2 emits a source id far outside [0, n).
  pass = 0;
  st = CompactCkg::TryAssemble(
      2, 1, 1, 1,
      [&pass](auto&& sink) { sink(++pass == 1 ? 0 : 99, 0, 1); }, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not deterministic"), std::string::npos)
      << st.message();
}

TEST(CompactCkgTest, NonDeterministicEmitStreamIsRejected) {
  CompactCkg out;
  int pass = 0;
  const Status st = CompactCkg::TryAssemble(
      1, 1, 1, 1,
      [&pass](auto&& sink) {
        ++pass;
        sink(0, 0, 1);
        if (pass == 2) sink(1, 0, 0);  // extra edge only on pass 2
      },
      &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not deterministic"), std::string::npos)
      << st.message();
}

// ---- Container roundtrips ----------------------------------------------------

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TinyConfig();
    ASSERT_TRUE(TryGenerateWebScaleGraph(config_, &graph_).ok());
    ASSERT_TRUE(SaveCompactCkg(fs_, kPath, graph_).ok());
  }

  static constexpr const char* kPath = "/store/test.kucstor";
  WebScaleConfig config_;
  CompactCkg graph_;
  InMemoryFileSystem fs_;
};

TEST_F(ContainerTest, RoundTripsOnEveryLoadPath) {
  for (const bool use_mmap : {true, false}) {
    for (const bool verify : {true, false}) {
      StoreLoadOptions options;
      options.use_mmap = use_mmap;
      options.verify_checksums = verify;
      CompactCkg loaded;
      StoreLoadStats stats;
      ASSERT_TRUE(LoadCompactCkg(fs_, kPath, options, &loaded, &stats).ok())
          << "mmap=" << use_mmap << " verify=" << verify;
      EXPECT_EQ(DescribeGraphDiff(graph_, loaded), "")
          << "mmap=" << use_mmap << " verify=" << verify;
      EXPECT_TRUE(loaded.ValidateTopology().ok());
      // The in-memory filesystem emulates the mapping with a heap copy.
      EXPECT_FALSE(stats.mmap_backed);
      // Full reads always verify; mmap loads verify on request.
      EXPECT_EQ(stats.sections_verified, verify || !use_mmap);
    }
  }
}

TEST_F(ContainerTest, RealFilesystemLoadIsKernelMapped) {
  FileSystem& real = DefaultFileSystem();
  const std::string path = ::testing::TempDir() + "/store_mmap.kucstor";
  ASSERT_TRUE(SaveCompactCkg(real, path, graph_).ok());
  CompactCkg loaded;
  StoreLoadStats stats;
  ASSERT_TRUE(LoadCompactCkg(real, path, StoreLoadOptions(), &loaded, &stats)
                  .ok());
  EXPECT_TRUE(stats.mmap_backed);
  EXPECT_TRUE(loaded.mmap_backed());
  EXPECT_EQ(DescribeGraphDiff(graph_, loaded), "");
  ASSERT_TRUE(real.Remove(path).ok());
}

TEST_F(ContainerTest, MissingFileIsRecoverableStatus) {
  CompactCkg loaded;
  const Status st =
      LoadCompactCkg(fs_, "/store/nope.kucstor", StoreLoadOptions(), &loaded,
                     nullptr);
  ASSERT_FALSE(st.ok());
}

// Every single-byte flip anywhere in the container must either fail with a
// recoverable Status carrying "container.cc:<line>" and a cause, or — for
// the few unchecksummed alignment-padding bytes — load a graph structurally
// identical to the original. Never a crash, never silent corruption.
TEST_F(ContainerTest, EveryFlippedByteFailsWithFileLineCauseOrIsPadding) {
  std::string image;
  ASSERT_TRUE(fs_.ReadFile(kPath, &image).ok());
  StoreLoadOptions options;
  options.verify_checksums = true;
  int64_t rejected = 0;
  int64_t padding = 0;
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    InMemoryFileSystem corrupt_fs;
    ASSERT_TRUE(corrupt_fs.WriteFile(kPath, corrupt).ok());
    CompactCkg loaded;
    const Status st =
        LoadCompactCkg(corrupt_fs, kPath, options, &loaded, nullptr);
    if (st.ok()) {
      EXPECT_EQ(DescribeGraphDiff(graph_, loaded), "")
          << "flip at byte " << i << " loaded a different graph";
      ++padding;
      continue;
    }
    EXPECT_NE(st.message().find("container.cc:"), std::string::npos)
        << "flip at byte " << i << " lacks file:line: " << st.message();
    ++rejected;
  }
  // The checksums must cover essentially the whole file: only inter-section
  // alignment padding (at most 7 bytes per section boundary) may slip.
  EXPECT_GT(rejected, static_cast<int64_t>(image.size()) - 5 * 8);
  EXPECT_LT(padding, 5 * 8);
}

// A crafted section length near UINT64_MAX defeats naive `length + 8`
// bounds arithmetic by wrapping to a small value, and the table checksum is
// trivially recomputable (FNV, no secret), so the file passes every
// integrity check on the way in. The bounds check must reject it with
// subtraction-only comparisons before any section/footer byte is touched.
TEST_F(ContainerTest, CraftedHugeSectionLengthWithValidChecksumsIsRejected) {
  std::string image;
  ASSERT_TRUE(fs_.ReadFile(kPath, &image).ok());
  constexpr uint64_t kTableEntryBytes = 24;
  constexpr uint64_t kTableSections = 4;
  constexpr uint64_t kTableBytes = kTableSections * kTableEntryBytes;
  uint64_t table_offset = 0;
  std::memcpy(&table_offset, image.data() + 24, 8);
  for (uint64_t s = 0; s < kTableSections; ++s) {
    for (const uint64_t crafted :
         {UINT64_MAX, UINT64_MAX - 7, uint64_t{1} << 63}) {
      std::string corrupt = image;
      std::memcpy(
          corrupt.data() + table_offset + s * kTableEntryBytes + 16,
          &crafted, 8);
      const uint64_t footer = Fnv1a64(corrupt.data() + table_offset,
                                      kTableBytes);
      std::memcpy(corrupt.data() + table_offset + kTableBytes, &footer, 8);
      InMemoryFileSystem corrupt_fs;
      ASSERT_TRUE(corrupt_fs.WriteFile(kPath, corrupt).ok());
      for (const bool use_mmap : {true, false}) {
        StoreLoadOptions options;
        options.use_mmap = use_mmap;
        CompactCkg loaded;
        const Status st =
            LoadCompactCkg(corrupt_fs, kPath, options, &loaded, nullptr);
        ASSERT_FALSE(st.ok()) << "section " << s << " length " << crafted
                              << " mmap=" << use_mmap;
        EXPECT_NE(st.message().find("container.cc:"), std::string::npos)
            << st.message();
      }
    }
  }
}

TEST_F(ContainerTest, TruncationAtEveryLengthIsRejectedWithFileLine) {
  std::string image;
  ASSERT_TRUE(fs_.ReadFile(kPath, &image).ok());
  for (size_t len = 0; len < image.size(); len += 7) {
    InMemoryFileSystem short_fs;
    ASSERT_TRUE(short_fs.WriteFile(kPath, image.substr(0, len)).ok());
    CompactCkg loaded;
    const Status st =
        LoadCompactCkg(short_fs, kPath, StoreLoadOptions(), &loaded, nullptr);
    ASSERT_FALSE(st.ok()) << "truncated to " << len << " bytes";
    EXPECT_NE(st.message().find("container.cc:"), std::string::npos)
        << st.message();
  }
}

// ---- Crash sweeps ------------------------------------------------------------

TEST_F(ContainerTest, SaveKilledAtEveryOpNeverCorruptsThePreviousContainer) {
  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    InMemoryFileSystem base;
    FaultInjectingFileSystem faulty(&base);
    // A valid older container is already in place.
    ASSERT_TRUE(SaveCompactCkg(base, kPath, graph_).ok());

    // Learn the op count of a clean save, then kill at every op.
    WebScaleConfig bigger = config_;
    bigger.num_kg_triplets += 8;
    CompactCkg next;
    ASSERT_TRUE(TryGenerateWebScaleGraph(bigger, &next).ok());
    faulty.ResetOpCount();
    ASSERT_TRUE(SaveCompactCkg(faulty, kPath, next).ok());
    const int64_t ops = faulty.op_count();
    ASSERT_GT(ops, 0);

    for (int64_t kill_at = 1; kill_at <= ops; ++kill_at) {
      ASSERT_TRUE(SaveCompactCkg(base, kPath, graph_).ok());  // reset old
      faulty.FailFrom(kill_at, mode);
      const Status st = SaveCompactCkg(faulty, kPath, next);
      faulty.Disarm();
      ASSERT_FALSE(st.ok()) << "kill_at=" << kill_at;
      // Atomic replacement: the old container still loads, bit for bit.
      CompactCkg loaded;
      ASSERT_TRUE(
          LoadCompactCkg(base, kPath, StoreLoadOptions(), &loaded, nullptr)
              .ok())
          << "kill_at=" << kill_at;
      EXPECT_EQ(DescribeGraphDiff(graph_, loaded), "")
          << "kill_at=" << kill_at;
    }
  }
}

TEST_F(ContainerTest, LoadKilledAtEveryOpFailsCleanlyOnEveryPath) {
  for (const FaultMode mode : {FaultMode::kFailCleanly, FaultMode::kTear}) {
    for (const bool use_mmap : {true, false}) {
      InMemoryFileSystem base;
      FaultInjectingFileSystem faulty(&base);
      ASSERT_TRUE(SaveCompactCkg(base, kPath, graph_).ok());
      StoreLoadOptions options;
      options.use_mmap = use_mmap;
      faulty.ResetOpCount();
      CompactCkg warm;
      ASSERT_TRUE(
          LoadCompactCkg(faulty, kPath, options, &warm, nullptr).ok());
      const int64_t ops = faulty.op_count();
      ASSERT_GT(ops, 0);
      for (int64_t kill_at = 1; kill_at <= ops; ++kill_at) {
        faulty.FailFrom(kill_at, mode);
        CompactCkg loaded;
        const Status st =
            LoadCompactCkg(faulty, kPath, options, &loaded, nullptr);
        faulty.Disarm();
        // A torn map/read may surface as an IO error or as a checksum /
        // length validation failure — either way a recoverable Status.
        ASSERT_FALSE(st.ok()) << "mode=" << static_cast<int>(mode)
                              << " mmap=" << use_mmap
                              << " kill_at=" << kill_at;
      }
    }
  }
}

}  // namespace
}  // namespace kucnet
