// Interpretability (paper Sec. V-F / Fig. 7): after training, extract the
// high-attention paths inside the pruned user-centric subgraph that carried
// a recommendation from the user to the recommended item, and print them as
// human-readable chains.
//
// Build & run:  ./build/examples/explain_recommendation

#include <cstdio>

#include "core/explain.h"
#include "core/kucnet.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

int main() {
  using namespace kucnet;

  SyntheticConfig config;
  config.name = "explainable";
  config.num_users = 120;
  config.num_items = 200;
  config.num_topics = 6;
  config.interactions_per_user = 10;
  config.kg_noise = 0.05;
  const RawData raw = GenerateSynthetic(config).raw;
  Rng rng(3);
  const Dataset dataset = TraditionalSplit(raw, 0.2, rng);
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);

  KucnetOptions options;
  options.sample_k = 20;
  Kucnet model(&dataset, &ckg, &ppr, options);
  TrainOptions train_options;
  train_options.epochs = 8;
  TrainModel(model, dataset, train_options);

  const int64_t user = dataset.TestUsers().front();
  const KucnetForward forward = model.Forward(user);
  const auto top = RecommendTopN(model, dataset, user, 3);

  std::printf("why does KUCNet recommend these items to user %lld?\n",
              (long long)user);
  for (const int64_t item : top) {
    std::printf("\nitem %lld (score %.3f):\n", (long long)item,
                forward.item_scores[item]);
    // The paper prunes edges with attention < 0.5; if nothing survives that
    // bar, relax it so the strongest available evidence is still shown.
    for (const double threshold : {0.5, 0.0}) {
      const auto paths = ExplainItem(forward, ckg, item, threshold, 3);
      if (paths.empty()) continue;
      for (const ExplainedPath& path : paths) {
        std::printf("  [min attention %.2f] %s\n", path.min_attention,
                    FormatPath(path, ckg).c_str());
      }
      break;
    }
  }
  return 0;
}
