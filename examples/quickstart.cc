// Quickstart: the whole library in ~60 lines.
//
//   1. generate a synthetic collaborative knowledge graph,
//   2. split it train/test,
//   3. precompute Personalized PageRank,
//   4. train KUCNet with BPR,
//   5. evaluate with the all-ranking protocol and print top-10 items.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/kucnet.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

int main() {
  using namespace kucnet;

  // 1. Data: a small latent-topic CKG (users x items + KG side information).
  SyntheticConfig config;
  config.name = "quickstart";
  config.num_users = 120;
  config.num_items = 200;
  config.num_topics = 6;
  config.interactions_per_user = 10;
  const RawData raw = GenerateSynthetic(config).raw;

  // 2. Hold out 20% of each user's interactions for testing.
  Rng rng(7);
  const Dataset dataset = TraditionalSplit(raw, 0.2, rng);
  std::printf("dataset: %s\n", dataset.Summary().c_str());

  // 3. The CKG and the PPR preprocessing step (Sec. IV-C2 of the paper).
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);

  // 4. KUCNet (Sec. IV): L = 3 layers, top-K = 20 PPR-pruned edges per node.
  KucnetOptions options;
  options.depth = 3;
  options.sample_k = 20;
  options.hidden_dim = 32;
  Kucnet model(&dataset, &ckg, &ppr, options);

  TrainOptions train_options;
  train_options.epochs = 8;
  train_options.verbose = true;
  const TrainResult result = TrainModel(model, dataset, train_options);
  std::printf("final test metrics: %s\n", ToString(result.final_eval).c_str());

  // 5. Top-10 recommendations for one user (training items masked).
  const int64_t user = dataset.TestUsers().front();
  const auto top = RecommendTopN(model, dataset, user, 10);
  std::printf("top-10 for user %lld:", (long long)user);
  for (const int64_t item : top) std::printf(" %lld", (long long)item);
  std::printf("\n");
  return 0;
}
