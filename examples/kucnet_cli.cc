// Command-line interface over the library: generate datasets, train any
// registered model, evaluate, and checkpoint KUCNet weights.
//
//   kucnet_cli generate --config synth-lastfm --split traditional --out DIR
//   kucnet_cli train    --data DIR --model KUCNet --epochs 8 [--ckpt FILE]
//                       [--checkpoint_dir DIR] [--checkpoint_every N]
//                       [--resume true]
//   kucnet_cli evaluate --data DIR --model KUCNet --ckpt FILE
//   kucnet_cli models                       # list registered model names
//
// Splits: traditional | new-item | new-user.
//
// Long runs are interruptible: with --checkpoint_dir the trainer writes a
// crash-safe full-state snapshot (weights, Adam moments, RNG stream,
// learning curve) every --checkpoint_every epochs; re-running the same
// command with --resume true continues from the newest valid snapshot and
// produces a final model bitwise identical to an uninterrupted run.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "baselines/registry.h"
#include "core/kucnet.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/trainer.h"
#include "util/logging.h"

namespace kucnet {
namespace {

/// Parses "--key value" pairs after the subcommand.
std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int a = 2; a + 1 < argc; a += 2) {
    std::string key = argv[a];
    KUC_CHECK(key.rfind("--", 0) == 0) << "expected --flag, got " << key;
    flags[key.substr(2)] = argv[a + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string config_name = FlagOr(flags, "config", "synth-lastfm");
  const std::string split = FlagOr(flags, "split", "traditional");
  const std::string out = FlagOr(flags, "out", ".");
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));

  const RawData raw = GenerateSynthetic(SynthConfigByName(config_name)).raw;
  Rng rng(seed);
  Dataset dataset;
  if (split == "traditional") {
    dataset = TraditionalSplit(raw, 0.2, rng);
  } else if (split == "new-item") {
    dataset = NewItemSplit(raw, 0.2, rng);
  } else if (split == "new-user") {
    dataset = NewUserSplit(raw, 0.2, rng);
  } else {
    KUC_CHECK(false) << "unknown split: " << split;
  }
  SaveDataset(dataset, out);
  std::printf("wrote %s to %s\n", dataset.Summary().c_str(), out.c_str());
  return 0;
}

int CmdTrainOrEvaluate(const std::map<std::string, std::string>& flags,
                       bool train) {
  const std::string data_dir = FlagOr(flags, "data", ".");
  const std::string model_name = FlagOr(flags, "model", "KUCNet");
  const std::string ckpt = FlagOr(flags, "ckpt", "");
  const int epochs = std::stoi(FlagOr(flags, "epochs", "-1"));

  Dataset dataset;
  const Status loaded = TryLoadDataset(data_dir, &dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.message().c_str());
    return 1;
  }
  std::printf("loaded %s\n", dataset.Summary().c_str());
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg, PprTableOptions(), &GlobalPool());

  ModelContext ctx;
  ctx.dataset = &dataset;
  ctx.ckg = &ckg;
  ctx.ppr = &ppr;
  ctx.kucnet.sample_k = std::stoll(FlagOr(flags, "k", "30"));
  ctx.kucnet.depth = std::stoi(FlagOr(flags, "depth", "3"));
  auto model = CreateModel(model_name, ctx);
  auto* kucnet = dynamic_cast<Kucnet*>(model.get());

  if (train) {
    TrainOptions opts;
    opts.epochs = epochs >= 0 ? epochs : DefaultEpochs(model_name);
    opts.verbose = true;
    opts.checkpoint_dir = FlagOr(flags, "checkpoint_dir", "");
    opts.checkpoint_every = std::stoi(FlagOr(flags, "checkpoint_every", "1"));
    opts.resume = FlagOr(flags, "resume", "false") == "true";
    const TrainResult result = TrainModel(*model, dataset, opts);
    if (result.resumed_from_epoch > 0) {
      std::printf("resumed from epoch %d\n", result.resumed_from_epoch);
    }
    std::printf("%s: %s (trained %.1fs)\n", model_name.c_str(),
                ToString(result.final_eval).c_str(), result.train_seconds);
    if (!ckpt.empty()) {
      KUC_CHECK(kucnet != nullptr)
          << "--ckpt is only supported for KUCNet-family models";
      kucnet->SaveCheckpoint(ckpt);
      std::printf("checkpoint written to %s\n", ckpt.c_str());
    }
  } else {
    if (!ckpt.empty()) {
      KUC_CHECK(kucnet != nullptr)
          << "--ckpt is only supported for KUCNet-family models";
      kucnet->LoadCheckpoint(ckpt);
      std::printf("loaded checkpoint %s\n", ckpt.c_str());
    }
    const EvalResult eval = EvaluateRanking(*model, dataset);
    std::printf("%s: %s\n", model_name.c_str(), ToString(eval).c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::printf(
        "usage: kucnet_cli <generate|train|evaluate|models> [--flags]\n");
    return 2;
  }
  const std::string command = argv[1];
  if (command == "models") {
    for (const auto& name : AllModelNames()) std::printf("%s\n", name.c_str());
    return 0;
  }
  const auto flags = ParseFlags(argc, argv);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrainOrEvaluate(flags, /*train=*/true);
  if (command == "evaluate") return CmdTrainOrEvaluate(flags, /*train=*/false);
  std::printf("unknown command: %s\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace kucnet

int main(int argc, char** argv) { return kucnet::Run(argc, argv); }
