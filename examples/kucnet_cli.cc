// Command-line interface over the library: generate datasets, train any
// registered model, evaluate, and checkpoint KUCNet weights.
//
//   kucnet_cli generate --config synth-lastfm --split traditional --out DIR
//   kucnet_cli train    --data DIR --model KUCNet --epochs 8 [--ckpt FILE]
//                       [--checkpoint_dir DIR] [--checkpoint_every N]
//                       [--resume true]
//   kucnet_cli evaluate --data DIR --model KUCNet --ckpt FILE
//   kucnet_cli serve    --data DIR [--ckpt FILE] --requests N --workers W
//                       [--deadline_us N] [--top_n N] [--queue N]
//                       [--batch_max_users N] [--batch_linger_us N]
//                       [--shards N] [--retries N] [--hedge_us N]
//                       [--tenant_quota N] [--tenant_window_us N]
//                       [--warm_cache N]
//   kucnet_cli stream   --data DIR --wal DIR [--updates N] [--workers W]
//                       [--warm_cache N]
//   kucnet_cli models                       # list registered model names
//
// Splits: traditional | new-item | new-user | temporal.
//
// `stream` replays a temporal dataset's held-out suffix as *live graph
// updates* (src/stream/): each interaction is appended to the WAL-backed
// StreamingCkg, incremental PPR repair runs, and exactly the users whose
// neighborhoods changed have their cached scores invalidated while a
// RecServer keeps answering interleaved requests. The WAL in --wal DIR is
// durable: re-running the command recovers the previous run's updates
// (reported as `recovered`) and continues the stream after them.
//
// `serve` runs the deadline-aware serving layer (src/serve/) over the
// dataset: requests flow through the staged pipeline (bounded admission
// queue -> extraction workers -> batch stage coalescing up to
// --batch_max_users concurrent requests into one multi-user forward,
// lingering --batch_linger_us for stragglers), degrade through the fallback
// chain on deadline misses, and the command prints the resulting tier mix,
// batching counters, shed rate and latency percentiles. With --shards > 1
// it runs the sharded fleet instead (src/serve/fleet/): users partition
// across replicas by consistent hashing, failed shards are retried on
// siblings (--retries), slow answers can be hedged (--hedge_us > 0 enables
// hedging past that latency), per-tenant admission is bounded by
// --tenant_quota per --tenant_window_us, and --warm_cache pre-fills each
// shard's score cache with the N most active users.
//
// Long runs are interruptible: with --checkpoint_dir the trainer writes a
// crash-safe full-state snapshot (weights, Adam moments, RNG stream,
// learning curve) every --checkpoint_every epochs; re-running the same
// command with --resume true continues from the newest valid snapshot and
// produces a final model bitwise identical to an uninterrupted run.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/kucnet.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "obs/export.h"
#include "serve/fleet/shard_router.h"
#include "serve/rec_server.h"
#include "store/container.h"
#include "store/web_scale.h"
#include "stream/streaming_ckg.h"
#include "train/trainer.h"
#include "util/clock.h"
#include "util/fs.h"
#include "util/logging.h"

namespace kucnet {
namespace {

const char kUsage[] =
    "usage: kucnet_cli "
    "<generate|train|evaluate|serve|stream|webscale|models> "
    "[--flags]\n"
    "  generate --config NAME --split KIND --out DIR [--seed N]\n"
    "  train    --data DIR --model NAME [--epochs N] [--k N] [--depth N]\n"
    "           [--ckpt FILE] [--checkpoint_dir DIR] [--checkpoint_every N]\n"
    "           [--resume true]\n"
    "  evaluate --data DIR --model NAME [--ckpt FILE] [--k N] [--depth N]\n"
    "  serve    --data DIR [--ckpt FILE] [--k N] [--depth N] [--requests N]\n"
    "           [--workers W] [--deadline_us N] [--top_n N] [--queue N]\n"
    "           [--batch_max_users N] [--batch_linger_us N]\n"
    "           [--shards N] [--retries N] [--hedge_us N] [--tenant_quota N]\n"
    "           [--tenant_window_us N] [--warm_cache N]\n"
    "  stream   --data DIR --wal DIR [--updates N] [--workers W]\n"
    "           [--warm_cache N]\n"
    "  webscale --out FILE [--users N] [--items N] [--entities N]\n"
    "           [--relations N] [--triplets N] [--interactions N] [--seed N]\n"
    "           [--ppr_users N]\n"
    "  models\n"
    "train/evaluate/serve also accept [--metrics_out FILE] (Prometheus text)\n"
    "and [--trace_out FILE] (chrome://tracing JSON); either flag turns the\n"
    "observability layer on for the run.\n";

/// Parses "--key value" pairs after the subcommand, validating each flag
/// against the command's known set. Returns false — after pointing at the
/// offending flag and printing usage — on an unknown flag or a flag missing
/// its value, so typos fail loudly instead of being silently ignored.
bool ParseFlags(int argc, char** argv, const std::set<std::string>& known,
                std::map<std::string, std::string>* flags) {
  for (int a = 2; a < argc; a += 2) {
    const std::string key = argv[a];
    if (key.rfind("--", 0) != 0 || known.count(key.substr(2)) == 0) {
      std::fprintf(stderr, "unknown flag for '%s': %s\n%s", argv[1],
                   key.c_str(), kUsage);
      return false;
    }
    if (a + 1 >= argc) {
      std::fprintf(stderr, "flag %s is missing a value\n%s", key.c_str(),
                   kUsage);
      return false;
    }
    (*flags)[key.substr(2)] = argv[a + 1];
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Strict numeric flag parse: the whole value must be a base-10 integer in
/// [min_value, max_value]. On a nonsensical value (garbage, `--shards 0`,
/// a negative `--retries`, ...) the offending flag is reported with usage
/// and false is returned, so commands can exit 2 *before* loading data or
/// building models instead of aborting mid-run on a KUC_CHECK.
bool ParseIntFlag(const std::map<std::string, std::string>& flags,
                  const std::string& key, int64_t fallback, int64_t min_value,
                  int64_t max_value, int64_t* out) {
  const std::string text = FlagOr(flags, key, std::to_string(fallback));
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "--%s: '%s' is not an integer\n%s", key.c_str(),
                 text.c_str(), kUsage);
    return false;
  }
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "--%s: %lld is out of range [%lld, %lld]\n%s",
                 key.c_str(), value, static_cast<long long>(min_value),
                 static_cast<long long>(max_value), kUsage);
    return false;
  }
  *out = value;
  return true;
}

/// Enables the observability layer when --metrics_out / --trace_out is
/// present, so the run records from its first instruction.
void MaybeEnableObs(const std::map<std::string, std::string>& flags) {
  if (flags.count("metrics_out") > 0 || flags.count("trace_out") > 0) {
    obs::SetEnabled(true);
  }
}

/// Writes the requested exports at the end of a command. Export failures are
/// diagnostics trouble, not command failure: warn and keep the exit code.
void MaybeExportObs(const std::map<std::string, std::string>& flags) {
  if (const std::string path = FlagOr(flags, "metrics_out", ""); !path.empty()) {
    const Status st = obs::WritePrometheusTextFile(obs::DefaultRegistry(), path);
    if (st.ok()) {
      std::printf("metrics written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n", st.message().c_str());
    }
  }
  if (const std::string path = FlagOr(flags, "trace_out", ""); !path.empty()) {
    const Status st =
        obs::WriteChromeTraceFile(obs::TraceRecorder::Default(), path);
    if (st.ok()) {
      std::printf("trace written to %s (load in chrome://tracing)\n",
                  path.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", st.message().c_str());
    }
  }
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string config_name = FlagOr(flags, "config", "synth-lastfm");
  const std::string split = FlagOr(flags, "split", "traditional");
  const std::string out = FlagOr(flags, "out", ".");
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));

  const SyntheticData synth = GenerateSynthetic(SynthConfigByName(config_name));
  const RawData& raw = synth.raw;
  Rng rng(seed);
  Dataset dataset;
  if (split == "traditional") {
    dataset = TraditionalSplit(raw, 0.2, rng);
  } else if (split == "new-item") {
    dataset = NewItemSplit(raw, 0.2, rng);
  } else if (split == "new-user") {
    dataset = NewUserSplit(raw, 0.2, rng);
  } else if (split == "temporal") {
    // Streaming setting: the arrival-order prefix trains, the suffix is the
    // replay stream (`kucnet_cli stream` appends it as live updates).
    dataset = TemporalSplit(raw, synth.arrival_order, 0.8);
  } else {
    KUC_CHECK(false) << "unknown split: " << split;
  }
  SaveDataset(dataset, out);
  std::printf("wrote %s to %s\n", dataset.Summary().c_str(), out.c_str());
  return 0;
}

int CmdTrainOrEvaluate(const std::map<std::string, std::string>& flags,
                       bool train) {
  MaybeEnableObs(flags);
  const std::string data_dir = FlagOr(flags, "data", ".");
  const std::string model_name = FlagOr(flags, "model", "KUCNet");
  const std::string ckpt = FlagOr(flags, "ckpt", "");
  const int epochs = std::stoi(FlagOr(flags, "epochs", "-1"));

  Dataset dataset;
  const Status loaded = TryLoadDataset(data_dir, &dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.message().c_str());
    return 1;
  }
  std::printf("loaded %s\n", dataset.Summary().c_str());
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg, PprTableOptions(), &GlobalPool());

  ModelContext ctx;
  ctx.dataset = &dataset;
  ctx.ckg = &ckg;
  ctx.ppr = &ppr;
  ctx.kucnet.sample_k = std::stoll(FlagOr(flags, "k", "30"));
  ctx.kucnet.depth = std::stoi(FlagOr(flags, "depth", "3"));
  auto model = CreateModel(model_name, ctx);
  auto* kucnet = dynamic_cast<Kucnet*>(model.get());

  if (train) {
    TrainOptions opts;
    opts.epochs = epochs >= 0 ? epochs : DefaultEpochs(model_name);
    opts.verbose = true;
    opts.checkpoint_dir = FlagOr(flags, "checkpoint_dir", "");
    opts.checkpoint_every = std::stoi(FlagOr(flags, "checkpoint_every", "1"));
    opts.resume = FlagOr(flags, "resume", "false") == "true";
    const TrainResult result = TrainModel(*model, dataset, opts);
    if (result.resumed_from_epoch > 0) {
      std::printf("resumed from epoch %d\n", result.resumed_from_epoch);
    }
    std::printf("%s: %s (trained %.1fs)\n", model_name.c_str(),
                ToString(result.final_eval).c_str(), result.train_seconds);
    if (!ckpt.empty()) {
      KUC_CHECK(kucnet != nullptr)
          << "--ckpt is only supported for KUCNet-family models";
      kucnet->SaveCheckpoint(ckpt);
      std::printf("checkpoint written to %s\n", ckpt.c_str());
    }
  } else {
    if (!ckpt.empty()) {
      KUC_CHECK(kucnet != nullptr)
          << "--ckpt is only supported for KUCNet-family models";
      kucnet->LoadCheckpoint(ckpt);
      std::printf("loaded checkpoint %s\n", ckpt.c_str());
    }
    const EvalResult eval = EvaluateRanking(*model, dataset);
    std::printf("%s: %s\n", model_name.c_str(), ToString(eval).c_str());
  }
  MaybeExportObs(flags);
  return 0;
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  // Numeric flags are validated up front — a nonsensical topology
  // (`--shards 0`, a negative retry budget or tenant quota) is a usage
  // error, reported before the dataset is even loaded.
  int64_t requests, shards, retries, hedge_us, tenant_quota, tenant_window_us;
  int64_t workers, queue, deadline_us, top_n, warm_cache, sample_k, depth;
  int64_t batch_max_users, batch_linger_us;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "requests", 200, 0, kMax, &requests) ||
      !ParseIntFlag(flags, "shards", 1, 1, 1024, &shards) ||
      !ParseIntFlag(flags, "retries", 2, 0, kMax, &retries) ||
      !ParseIntFlag(flags, "hedge_us", 0, 0, kMax, &hedge_us) ||
      !ParseIntFlag(flags, "tenant_quota", 0, 0, kMax, &tenant_quota) ||
      !ParseIntFlag(flags, "tenant_window_us", 1'000'000, 1, kMax,
                    &tenant_window_us) ||
      !ParseIntFlag(flags, "workers", 2, 0, 1024, &workers) ||
      !ParseIntFlag(flags, "queue", 64, 1, kMax, &queue) ||
      !ParseIntFlag(flags, "deadline_us", 50'000, 1, kMax, &deadline_us) ||
      !ParseIntFlag(flags, "top_n", 20, 1, kMax, &top_n) ||
      !ParseIntFlag(flags, "warm_cache", 0, 0, kMax, &warm_cache) ||
      !ParseIntFlag(flags, "batch_max_users", 8, 1, kMax, &batch_max_users) ||
      !ParseIntFlag(flags, "batch_linger_us", 0, 0, kMax, &batch_linger_us) ||
      !ParseIntFlag(flags, "k", 30, 1, kMax, &sample_k) ||
      !ParseIntFlag(flags, "depth", 3, 1, 64, &depth)) {
    return 2;
  }

  MaybeEnableObs(flags);
  const std::string data_dir = FlagOr(flags, "data", ".");
  const std::string ckpt = FlagOr(flags, "ckpt", "");

  Dataset dataset;
  const Status loaded = TryLoadDataset(data_dir, &dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.message().c_str());
    return 1;
  }
  std::printf("loaded %s\n", dataset.Summary().c_str());
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg, PprTableOptions(), &GlobalPool());

  KucnetOptions model_opts;
  model_opts.sample_k = sample_k;
  model_opts.depth = static_cast<int>(depth);

  RecServerOptions server_opts;
  server_opts.num_workers = static_cast<int>(workers);
  server_opts.queue_capacity = queue;
  server_opts.default_deadline_micros = deadline_us;
  server_opts.default_top_n = top_n;
  server_opts.warm_cache_users = warm_cache;
  server_opts.batch_max_users = batch_max_users;
  server_opts.batch_linger_micros = batch_linger_us;
  if (server_opts.warm_cache_users > server_opts.cache.capacity) {
    server_opts.cache.capacity = server_opts.warm_cache_users;
  }

  if (shards > 1) {
    // Fleet mode: one replica per shard behind the consistent-hash router,
    // every replica carrying the same weights.
    std::vector<std::unique_ptr<Kucnet>> owned;
    std::vector<Kucnet*> models;
    for (int s = 0; s < shards; ++s) {
      owned.push_back(
          std::make_unique<Kucnet>(&dataset, &ckg, &ppr, model_opts));
      if (!ckpt.empty()) owned.back()->LoadCheckpoint(ckpt);
      models.push_back(owned.back().get());
    }
    if (!ckpt.empty()) {
      std::printf("loaded checkpoint %s into %d shards\n", ckpt.c_str(),
                  static_cast<int>(shards));
    }
    ShardRouterOptions fleet_opts;
    fleet_opts.server = server_opts;
    fleet_opts.max_retries = static_cast<int>(retries);
    fleet_opts.hedging = hedge_us > 0;
    if (hedge_us > 0) fleet_opts.hedge_latency_micros = hedge_us;
    fleet_opts.tenant.quota = tenant_quota;
    fleet_opts.tenant.window_micros = tenant_window_us;
    ShardRouter router(models, &dataset, &ckg, &ppr, fleet_opts);

    int64_t served = 0;
    for (int64_t r = 0; r < requests; ++r) {
      FleetRequest request;
      request.request.user = r % dataset.num_users;
      const FleetResponse response = router.Route(request);
      served += response.response.status == ResponseStatus::kOk;
    }
    router.Shutdown();

    const FleetStats stats = router.stats();
    std::printf("fleet of %d shards served %lld/%lld  (quota shed %lld, "
                "retries %lld, hedges %lld won %lld, fallback %lld, "
                "breaker transitions %lld)\n",
                static_cast<int>(shards), static_cast<long long>(served),
                static_cast<long long>(stats.submitted),
                static_cast<long long>(stats.quota_shed),
                static_cast<long long>(stats.retries),
                static_cast<long long>(stats.hedges),
                static_cast<long long>(stats.hedges_won),
                static_cast<long long>(stats.fallback_answers),
                static_cast<long long>(stats.breaker_transitions));
    std::printf("tier mix:");
    for (int t = 0; t < kNumServeTiers; ++t) {
      std::printf("  %s %lld", ServeTierName(static_cast<ServeTier>(t)),
                  static_cast<long long>(stats.tier_count[t]));
    }
    std::printf("\npath mix:");
    for (int p = 0; p < kNumFleetPaths; ++p) {
      std::printf("  %s %lld", FleetPathName(static_cast<FleetPath>(p)),
                  static_cast<long long>(stats.path_count[p]));
    }
    std::printf(
        "\nlatency p50 <= %lldus  p99 <= %lldus\n",
        static_cast<long long>(stats.shards.latency.PercentileUpperBound(0.5)),
        static_cast<long long>(
            stats.shards.latency.PercentileUpperBound(0.99)));
    MaybeExportObs(flags);
    return 0;
  }

  Kucnet model(&dataset, &ckg, &ppr, model_opts);
  if (!ckpt.empty()) {
    model.LoadCheckpoint(ckpt);
    std::printf("loaded checkpoint %s\n", ckpt.c_str());
  }
  RecServer server(&model, &dataset, &ckg, &ppr, server_opts);

  std::vector<std::future<RecResponse>> futures;
  futures.reserve(requests);
  for (int64_t r = 0; r < requests; ++r) {
    futures.push_back(server.Submit({r % dataset.num_users}));
  }
  int64_t served = 0;
  for (auto& future : futures) {
    served += future.get().status == ResponseStatus::kOk;
  }
  server.Shutdown();

  const ServerStats stats = server.stats();
  std::printf("served %lld/%lld  (shed %lld, deadline missed %lld, "
              "degraded %lld)\n",
              static_cast<long long>(served),
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.deadline_missed),
              static_cast<long long>(stats.degraded));
  std::printf("batches %lld (multi-user %lld, batched requests %lld, "
              "preempted %lld)\n",
              static_cast<long long>(stats.forward_batches),
              static_cast<long long>(stats.multi_user_batches),
              static_cast<long long>(stats.batched_requests),
              static_cast<long long>(stats.deadline_preempted));
  std::printf("tier mix:");
  for (int t = 0; t < kNumServeTiers; ++t) {
    std::printf("  %s %lld", ServeTierName(static_cast<ServeTier>(t)),
                static_cast<long long>(stats.tier_count[t]));
  }
  std::printf("\nlatency p50 <= %lldus  p99 <= %lldus\n",
              static_cast<long long>(stats.latency.PercentileUpperBound(0.5)),
              static_cast<long long>(stats.latency.PercentileUpperBound(0.99)));
  MaybeExportObs(flags);
  return 0;
}

int CmdStream(const std::map<std::string, std::string>& flags) {
  int64_t updates, workers, warm_cache, sample_k, depth;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "updates", -1, -1, kMax, &updates) ||
      !ParseIntFlag(flags, "workers", 0, 0, 1024, &workers) ||
      !ParseIntFlag(flags, "warm_cache", 0, 0, kMax, &warm_cache) ||
      !ParseIntFlag(flags, "k", 30, 1, kMax, &sample_k) ||
      !ParseIntFlag(flags, "depth", 3, 1, 64, &depth)) {
    return 2;
  }
  const std::string wal_dir = FlagOr(flags, "wal", "");
  if (wal_dir.empty()) {
    std::fprintf(stderr, "stream requires --wal DIR\n%s", kUsage);
    return 2;
  }

  MaybeEnableObs(flags);
  const std::string data_dir = FlagOr(flags, "data", ".");
  Dataset dataset;
  const Status loaded = TryLoadDataset(data_dir, &dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.message().c_str());
    return 1;
  }
  std::printf("loaded %s\n", dataset.Summary().c_str());
  if (dataset.kind != SplitKind::kTemporal) {
    std::printf("note: dataset is not a temporal split; the test rows will "
                "be replayed in file order\n");
  }

  // The server answers over the *training* graph while the streaming layer
  // evolves its own copy; the bridge between them is cache invalidation —
  // each applied update drops exactly the touched users' cached scores.
  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg, PprTableOptions(), &GlobalPool());
  KucnetOptions model_opts;
  model_opts.sample_k = sample_k;
  model_opts.depth = static_cast<int>(depth);
  Kucnet model(&dataset, &ckg, &ppr, model_opts);
  RecServerOptions server_opts;
  server_opts.num_workers = static_cast<int>(workers);
  server_opts.warm_cache_users = warm_cache;
  if (server_opts.warm_cache_users > server_opts.cache.capacity) {
    server_opts.cache.capacity = server_opts.warm_cache_users;
  }
  RecServer server(&model, &dataset, &ckg, &ppr, server_opts);

  std::unique_ptr<StreamingCkg> stream;
  const Status opened = StreamingCkg::Open(dataset, /*fs=*/nullptr, wal_dir,
                                           StreamingCkgOptions(), &GlobalPool(),
                                           &stream);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open streaming CKG: %s\n",
                 opened.message().c_str());
    return 1;
  }
  const int64_t recovered = stream->stats().replayed;
  if (recovered > 0) {
    std::printf("recovered %lld updates from the WAL in %s\n",
                static_cast<long long>(recovered), wal_dir.c_str());
  }
  stream->set_invalidation_hook(
      [&server](const std::vector<int64_t>& users) {
        server.InvalidateUsers(users);
      });

  // Replay the held-out suffix as live updates, skipping what a previous
  // run already streamed, and serve one interleaved request per update.
  // Every request must be answered (possibly degraded) — the serving layer
  // never goes dark while the graph changes underneath it.
  const int64_t total = static_cast<int64_t>(dataset.test.size());
  const int64_t begin = std::min(recovered, total);
  const int64_t end =
      updates < 0 ? total : std::min(total, begin + updates);
  int64_t answered = 0, unanswered = 0;
  for (int64_t k = begin; k < end; ++k) {
    const auto& [user, item] = dataset.test[k];
    const Status appended = stream->AppendInteraction(user, item);
    if (!appended.ok()) {
      std::fprintf(stderr, "update %lld rejected: %s\n",
                   static_cast<long long>(k), appended.message().c_str());
      return 1;
    }
    const RecResponse response = server.ServeSync({user});
    (response.status == ResponseStatus::kOk ? answered : unanswered) += 1;
  }
  server.Shutdown();

  const StreamingCkgStats& stats = stream->stats();
  std::printf("streamed %lld updates (%lld applied, %lld duplicates); "
              "wal next_seq %lld, %lld sealed segments\n",
              static_cast<long long>(end - begin),
              static_cast<long long>(stats.applied),
              static_cast<long long>(stats.duplicates),
              static_cast<long long>(stream->wal().next_seq()),
              static_cast<long long>(stream->wal().segments_sealed()));
  std::printf("invalidated %lld touched users (cache dropped %lld entries "
              "by generation)\n",
              static_cast<long long>(stats.invalidated_users),
              static_cast<long long>(server.cache().user_invalidations()));
  std::printf("served %lld/%lld interleaved requests (%lld unanswered)\n",
              static_cast<long long>(answered),
              static_cast<long long>(end - begin),
              static_cast<long long>(unanswered));
  MaybeExportObs(flags);
  return 0;
}

// Generate -> save -> mmap-reload -> verify -> PPR smoke over the compact
// store (src/store/). Defaults are the reduced `scale`-label CI
// configuration; the full 10^6-user run is `--users 1000000 --items 100000
// --entities 900000 --triplets 10000000`.
int CmdWebScale(const std::map<std::string, std::string>& flags) {
  WebScaleConfig reduced = WebScaleReducedConfig();
  int64_t users, items, entities, relations, triplets, interactions, seed,
      ppr_users;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "users", reduced.num_users, 1, kMax, &users) ||
      !ParseIntFlag(flags, "items", reduced.num_items, 1, kMax, &items) ||
      !ParseIntFlag(flags, "entities", reduced.num_entities, 0, kMax,
                    &entities) ||
      !ParseIntFlag(flags, "relations", reduced.num_kg_relations, 1, 65535,
                    &relations) ||
      !ParseIntFlag(flags, "triplets", reduced.num_kg_triplets, 0, kMax,
                    &triplets) ||
      !ParseIntFlag(flags, "interactions", reduced.interactions_per_user, 0,
                    kMax, &interactions) ||
      !ParseIntFlag(flags, "seed", static_cast<int64_t>(reduced.seed), 0, kMax,
                    &seed) ||
      !ParseIntFlag(flags, "ppr_users", 8, 0, kMax, &ppr_users)) {
    return 2;
  }
  const std::string out_path = FlagOr(flags, "out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "webscale requires --out FILE\n%s", kUsage);
    return 2;
  }

  MaybeEnableObs(flags);
  WebScaleConfig config = reduced;
  config.num_users = users;
  config.num_items = items;
  config.num_entities = entities;
  config.num_kg_relations = relations;
  config.num_kg_triplets = triplets;
  config.interactions_per_user = interactions;
  config.seed = static_cast<uint64_t>(seed);
  const Status valid = ValidateWebScaleConfig(config);
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 valid.message().c_str());
    return 2;
  }

  FileSystem& fs = FsOrDefault(nullptr);
  Stopwatch generate_timer;
  const Status generated = GenerateWebScaleContainer(fs, out_path, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.message().c_str());
    return 1;
  }
  const double generate_seconds = generate_timer.Seconds();

  // Reload the container through the mmap path and verify it end to end:
  // the round trip, not the in-memory graph, is what the command certifies.
  CompactCkg graph;
  StoreLoadStats load_stats;
  Stopwatch load_timer;
  StoreLoadOptions load_options;
  const Status loaded =
      LoadCompactCkg(fs, out_path, load_options, &graph, &load_stats);
  if (!loaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n", loaded.message().c_str());
    return 1;
  }
  const double load_seconds = load_timer.Seconds();
  const Status topology = graph.ValidateTopology();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology check failed: %s\n",
                 topology.message().c_str());
    return 1;
  }

  const int64_t smoke_users = std::min(ppr_users, graph.num_users());
  int64_t ppr_entries = 0;
  for (int64_t u = 0; u < smoke_users; ++u) {
    ppr_entries +=
        static_cast<int64_t>(PprForwardPush(graph, graph.UserNode(u)).size());
  }

  const int64_t nodes = graph.num_nodes();
  const int64_t edges = graph.num_edges();
  const double bytes_per_edge =
      edges > 0 ? static_cast<double>(graph.bytes_resident()) /
                      static_cast<double>(edges)
                : 0.0;
  const int64_t int64_bytes = (nodes + 1) * 8 + edges * 16;
  std::printf("generated %s: %lld nodes, %lld directed edges in %.2fs\n",
              config.name.c_str(), static_cast<long long>(nodes),
              static_cast<long long>(edges), generate_seconds);
  std::printf("container %s: %lld bytes, reloaded (%s) in %.3fs\n",
              out_path.c_str(), static_cast<long long>(load_stats.file_bytes),
              load_stats.mmap_backed ? "mmap" : "full read", load_seconds);
  std::printf("resident %lld bytes  %.2f bytes/edge  %.1f%% of the int64 "
              "layout\n",
              static_cast<long long>(graph.bytes_resident()), bytes_per_edge,
              100.0 * static_cast<double>(graph.bytes_resident()) /
                  static_cast<double>(int64_bytes));
  std::printf("ppr smoke: %lld users pushed, %lld estimate entries\n",
              static_cast<long long>(smoke_users),
              static_cast<long long>(ppr_entries));
  MaybeExportObs(flags);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::printf("%s", kUsage);
    return 2;
  }
  const std::string command = argv[1];
  static const std::map<std::string, std::set<std::string>> kKnownFlags = {
      {"generate", {"config", "split", "out", "seed"}},
      {"train",
       {"data", "model", "epochs", "k", "depth", "ckpt", "checkpoint_dir",
        "checkpoint_every", "resume", "metrics_out", "trace_out"}},
      {"evaluate",
       {"data", "model", "ckpt", "k", "depth", "metrics_out", "trace_out"}},
      {"serve",
       {"data", "ckpt", "k", "depth", "requests", "workers", "deadline_us",
        "top_n", "queue", "shards", "retries", "hedge_us", "tenant_quota",
        "tenant_window_us", "warm_cache", "batch_max_users",
        "batch_linger_us", "metrics_out", "trace_out"}},
      {"stream",
       {"data", "wal", "updates", "workers", "warm_cache", "k", "depth",
        "metrics_out", "trace_out"}},
      {"webscale",
       {"out", "users", "items", "entities", "relations", "triplets",
        "interactions", "seed", "ppr_users", "metrics_out", "trace_out"}},
      {"models", {}},
  };
  const auto known = kKnownFlags.find(command);
  if (known == kKnownFlags.end()) {
    std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(), kUsage);
    return 2;
  }
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, known->second, &flags)) return 2;
  if (command == "models") {
    for (const auto& name : AllModelNames()) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrainOrEvaluate(flags, /*train=*/true);
  if (command == "evaluate") return CmdTrainOrEvaluate(flags, /*train=*/false);
  if (command == "stream") return CmdStream(flags);
  if (command == "webscale") return CmdWebScale(flags);
  return CmdServe(flags);
}

}  // namespace
}  // namespace kucnet

int main(int argc, char** argv) { return kucnet::Run(argc, argv); }
