// The paper's Figure 1 scenario, end to end: newly released movies have no
// interaction history, but the knowledge graph connects them (through
// directors, actors, genres) to movies users already watched. A pure
// collaborative-filtering model (MF) is blind to them; KUCNet recommends
// them through KG paths.
//
// Build & run:  ./build/examples/new_item_movies

#include <cstdio>

#include "baselines/mf.h"
#include "core/kucnet.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

int main() {
  using namespace kucnet;

  // A movie-like CKG: topics play the role of genres/franchises; entities
  // play directors, actors, studios.
  SyntheticConfig config;
  config.name = "movies";
  config.num_users = 150;
  config.num_items = 400;
  config.num_topics = 8;
  config.interactions_per_user = 12;
  config.entities_per_topic = 8;  // per-genre directors/actors
  config.attributes_per_item = 3;
  config.kg_noise = 0.1;
  const RawData raw = GenerateSynthetic(config).raw;

  // "New releases": one fifth of the movies lose every interaction. They
  // exist only in the KG, exactly like Sherlock Holmes 2 / Avengers in the
  // paper's Fig. 1.
  Rng rng(11);
  const Dataset dataset = NewItemSplit(raw, 0.2, rng);
  std::printf("dataset: %s\n", dataset.Summary().c_str());
  std::printf("(test items are new releases: zero training interactions)\n\n");

  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);

  TrainOptions train_options;
  train_options.epochs = 10;

  // Collaborative filtering only: new movies have untrained embeddings.
  Mf mf(&dataset, EmbeddingModelOptions{});
  const TrainResult mf_result = TrainModel(mf, dataset, train_options);

  // KUCNet: scores new movies through their KG connections.
  KucnetOptions options;
  options.sample_k = 40;
  Kucnet kucnet(&dataset, &ckg, &ppr, options);
  const TrainResult kucnet_result = TrainModel(kucnet, dataset, train_options);

  std::printf("recommending new releases (recall@20 / ndcg@20):\n");
  std::printf("  MF     : %.4f / %.4f   <- blind to new movies\n",
              mf_result.final_eval.recall, mf_result.final_eval.ndcg);
  std::printf("  KUCNet : %.4f / %.4f   <- reaches them through the KG\n",
              kucnet_result.final_eval.recall, kucnet_result.final_eval.ndcg);

  // Show that the recommended new movies are actually KG-reachable.
  const int64_t user = dataset.TestUsers().front();
  const KucnetForward forward = kucnet.Forward(user);
  int64_t reachable = 0;
  const auto test_items = dataset.TestItemsByUser()[user];
  for (const int64_t item : test_items) {
    if (forward.graph.FinalIndexOf(ckg.ItemNode(item)) >= 0) ++reachable;
  }
  std::printf(
      "\nuser %lld: %lld of %zu held-out new movies are inside the pruned "
      "user-centric subgraph (L=%d, K=%lld)\n",
      (long long)user, (long long)reachable, test_items.size(),
      kucnet.options().depth, (long long)kucnet.options().sample_k);
  return 0;
}
