// The paper's Sec. V-D scenario: disease gene prediction as recommendation,
// with diseases as users and genes as items. One fifth of the diseases are
// "new" — no known gene associations — and are connected to the rest of the
// graph only through disease-disease similarity edges in the KG. KUCNet
// propagates through those user-side edges; a model relying on interaction
// history cannot.
//
// Build & run:  ./build/examples/disease_gene

#include <cstdio>

#include "baselines/pathsim.h"
#include "core/kucnet.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "train/trainer.h"

int main() {
  using namespace kucnet;

  const SyntheticConfig config = SynthDisGeNetConfig();
  const RawData raw = GenerateSynthetic(config).raw;
  Rng rng(5);
  const Dataset dataset = NewUserSplit(raw, 0.2, rng);
  std::printf("dataset: %s\n", dataset.Summary().c_str());
  std::printf("(test users are new diseases with no known genes; they keep "
              "their disease-disease KG edges)\n\n");

  const Ckg ckg = dataset.BuildCkg();
  const PprTable ppr = PprTable::Compute(ckg);

  KucnetOptions options;
  options.sample_k = 60;
  Kucnet kucnet(&dataset, &ckg, &ppr, options);
  TrainOptions train_options;
  train_options.epochs = 10;
  const TrainResult kucnet_result = TrainModel(kucnet, dataset, train_options);

  PathSim pathsim(&dataset, &ckg);
  const EvalResult pathsim_eval = EvaluateRanking(pathsim, dataset);

  std::printf("predicting genes for new diseases (recall@20 / ndcg@20):\n");
  std::printf("  PathSim : %.4f / %.4f\n", pathsim_eval.recall,
              pathsim_eval.ndcg);
  std::printf("  KUCNet  : %.4f / %.4f\n", kucnet_result.final_eval.recall,
              kucnet_result.final_eval.ndcg);

  // Predictions for one new disease: like the paper's Fig. 7(d), the path
  // runs disease -> similar disease -> shared gene.
  const int64_t disease = dataset.TestUsers().front();
  const auto scores = kucnet.ScoreItems(disease);
  const auto top = TopNIndices(scores, 5);
  const auto truth = dataset.TestItemsByUser()[disease];
  std::printf("\nnew disease %lld: top-5 predicted genes:", (long long)disease);
  for (const int64_t gene : top) {
    const bool hit =
        std::find(truth.begin(), truth.end(), gene) != truth.end();
    std::printf(" %lld%s", (long long)gene, hit ? "*" : "");
  }
  std::printf("   (* = confirmed association in the held-out test set)\n");
  return 0;
}
